"""Unified registry of named, size-bounded LRU caches with counters.

Every memoized operation in the system goes through a named
:class:`LRUCache` registered with the process-wide :class:`CacheManager`
(``caches``).  Centralizing them buys three things the ad-hoc module-global
dictionaries it replaced could not provide:

* **bounded memory** — each cache evicts least-recently-used entries past
  its ``maxsize`` instead of growing without limit;
* **observability** — per-cache hit/miss/eviction counters, snapshot/delta
  support so the compile driver can report per-compile hit rates in the
  Table 1 phase tables;
* **control** — ``caches.reset()`` between test modules, and
  ``caches.disabled()`` for the uncached A/B path behind
  ``CompilerOptions(caching="off")``.

This module is dependency-free (no ``isets`` imports) so every layer of
the system can use it without cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, Optional, Tuple

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one named cache."""

    name: str
    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class LRUCache:
    """A size-bounded memoization cache with hit/miss/eviction counters.

    Thread-safe: compiles are single-threaded today, but the ``threads``
    execution backend shares the process, so all mutation happens under a
    lock.  Values are treated as immutable by convention — callers must
    never mutate a cached result.
    """

    def __init__(self, name: str, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, key: Hashable) -> Tuple[bool, object]:
        """``(found, value)``; counts a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: object) -> int:
        """Insert ``key``; returns how many entries were evicted to fit."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            evicted = 0
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
            return evicted

    def memoize(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Return the cached value for ``key``, computing it on a miss.

        Two threads missing the same key concurrently both compute; the
        results must therefore be interchangeable (pure functions of the
        key).  For identity-canonicalization use :meth:`intern` instead.
        """
        found, value = self.lookup(key)
        if found:
            return value
        value = compute()
        self.put(key, value)
        return value

    def intern(self, key: Hashable, value: object) -> object:
        """Atomic get-or-put: the *first* value stored under ``key`` wins.

        Unlike :meth:`memoize`'s check-then-act, the lookup and insert
        happen under one lock acquisition, so concurrent threads racing
        to intern structurally equal objects all receive the same
        canonical instance — required for hash-consing, where callers
        rely on identity stability.
        """
        with self._lock:
            existing = self._data.get(key, _MISSING)
            if existing is not _MISSING:
                self._data.move_to_end(key)
                self.hits += 1
                return existing
            self.misses += 1
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def reset(self) -> None:
        """Clear entries *and* counters."""
        with self._lock:
            self._data.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                self.name,
                self.hits,
                self.misses,
                self.evictions,
                len(self._data),
                self.maxsize,
            )


class CacheManager:
    """Registry of named LRU caches plus a global enable switch."""

    def __init__(self):
        self._caches: Dict[str, LRUCache] = {}
        # Per-thread disable depth: a compile server thread running the
        # caching="off" A/B path must not turn memoization off for the
        # caching="on" compiles running concurrently in sibling threads.
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def _disabled_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @_disabled_depth.setter
    def _disabled_depth(self, value: int) -> None:
        self._local.depth = value

    # -- registration ------------------------------------------------------

    def register(self, name: str, maxsize: int = 4096) -> LRUCache:
        """Create (or return the existing) cache called ``name``."""
        with self._lock:
            cache = self._caches.get(name)
            if cache is None:
                cache = LRUCache(name, maxsize)
                self._caches[name] = cache
            return cache

    def __getitem__(self, name: str) -> LRUCache:
        return self._caches[name]

    def __contains__(self, name: str) -> bool:
        return name in self._caches

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._caches))

    # -- memoization -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._disabled_depth == 0

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Bypass every cache inside the block (the ``caching="off"`` path).

        Re-entrant, and scoped to the *calling thread*: concurrent
        compiles in other threads keep memoizing.  Lookups neither read,
        write, nor count while disabled.
        """
        self._disabled_depth += 1
        try:
            yield
        finally:
            self._disabled_depth -= 1

    def memoize(
        self, cache: LRUCache, key: Hashable, compute: Callable[[], object]
    ) -> object:
        if self._disabled_depth:
            return compute()
        return cache.memoize(key, compute)

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, CacheStats]:
        return {name: c.stats() for name, c in sorted(self._caches.items())}

    def counters(self) -> Dict[str, Tuple[int, int, int]]:
        """Raw ``{name: (hits, misses, evictions)}`` snapshot."""
        return {
            name: (c.hits, c.misses, c.evictions)
            for name, c in self._caches.items()
        }

    def delta(
        self, before: Dict[str, Tuple[int, int, int]]
    ) -> Dict[str, Dict[str, int]]:
        """Counter increments since a :meth:`counters` snapshot."""
        out: Dict[str, Dict[str, int]] = {}
        for name, cache in sorted(self._caches.items()):
            b_hits, b_misses, b_evict = before.get(name, (0, 0, 0))
            hits = cache.hits - b_hits
            misses = cache.misses - b_misses
            evictions = cache.evictions - b_evict
            if hits or misses or evictions:
                out[name] = {
                    "hits": hits,
                    "misses": misses,
                    "evictions": evictions,
                }
        return out

    # -- control -----------------------------------------------------------

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()

    def reset(self) -> None:
        """Clear all entries and counters (test isolation)."""
        for cache in self._caches.values():
            cache.reset()


#: The process-wide cache registry every memoized operation goes through.
caches = CacheManager()


def reset_caches() -> None:
    """Drop all memoized state and counters (used between test modules)."""
    caches.reset()
