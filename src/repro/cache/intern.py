"""Hash-consing: stable structural keys and canonical instances.

Every memoization cache needs a key that is *structural* (equal pieces hit
the same entry) yet *exact* (no alpha-renaming, so a cached result can be
substituted for a fresh computation byte-for-byte).  This module defines
those keys for the four ``isets`` value types and an interning table that
canonicalizes :class:`~repro.isets.conjunct.Conjunct` instances, so the
same affine piece recurring across the paper's Figure 3/4/5 equations is
stored — and keyed — once.

Two kinds of key coexist deliberately:

* the **exact keys** here include wildcard names and constraint order, so
  memoized *transformations* (projection, redundancy removal, set algebra)
  replay deterministically — critical for the guarantee that
  ``CompilerOptions(caching="off")`` emits byte-identical programs;
* :meth:`Conjunct.key` stays alpha-canonical (wildcards renamed
  positionally) and is used only where the cached value is insensitive to
  names — the boolean emptiness test and union deduplication.

Imports go one way: ``repro.cache.manager`` is dependency-free, this
module imports ``isets`` types, and ``isets`` modules import back only the
manager (plus the tiny helpers here), so there are no cycles.
"""

from __future__ import annotations

from typing import Tuple

from ..isets.conjunct import Conjunct
from ..isets.constraint import Constraint
from ..isets.linexpr import LinExpr
from .manager import caches

#: Canonical conjunct instances, keyed exactly.  Interning hits measure how
#: often the same piece recurs; sharing instances also shares their lazily
#: cached alpha-canonical keys.
_INTERN = caches.register("intern.conjunct", maxsize=65536)


def linexpr_key(expr: LinExpr) -> Tuple:
    """Exact structural key of an affine expression."""
    return ("lin", tuple(expr.terms()), expr.constant)


def constraint_key(constraint: Constraint) -> Tuple:
    """Exact structural key of a constraint (kind + normalized expr)."""
    return ("con", constraint.kind, tuple(constraint.expr.terms()),
            constraint.expr.constant)


def conjunct_key(conjunct: Conjunct) -> Tuple:
    """Exact structural key: constraint order and wildcard names included.

    Constraints hash-cons their own ``_hash`` so this tuple is cheap to
    hash; it distinguishes alpha-variants on purpose (see module docs).
    """
    return ("cj", conjunct.constraints, conjunct.wildcards)


def presburger_key(value) -> Tuple:
    """Exact structural key of an :class:`IntegerSet` / :class:`IntegerMap`.

    Includes the class, the space (dimension names and order), and the
    ordered conjunct keys — two sets hit the same entry only when a fresh
    computation would be indistinguishable.
    """
    space = value.space
    return (
        type(value).__name__,
        space.in_dims,
        space.out_dims,
        tuple(conjunct_key(c) for c in value.conjuncts),
    )


def intern_linexpr(expr: LinExpr) -> LinExpr:
    """Canonical instance for ``expr`` (identity-stable per process)."""
    cache = caches.register("intern.linexpr", maxsize=65536)
    if not caches.enabled:
        return expr
    return cache.intern(linexpr_key(expr), expr)


def intern_constraint(constraint: Constraint) -> Constraint:
    """Canonical instance for ``constraint``."""
    cache = caches.register("intern.constraint", maxsize=65536)
    if not caches.enabled:
        return constraint
    return cache.intern(constraint_key(constraint), constraint)


def intern_conjunct(conjunct: Conjunct) -> Conjunct:
    """Canonical instance for ``conjunct``; an intern hit returns the
    first-seen structurally identical instance (same names, same order, so
    the swap is observationally invisible).  Uses the atomic
    :meth:`~repro.cache.manager.LRUCache.intern` so threads racing on the
    same key cannot mint two distinct "canonical" instances."""
    if not caches.enabled:
        return conjunct
    return _INTERN.intern(conjunct_key(conjunct), conjunct)
