"""Set-algebra memoization and persistent compilation caching.

The paper's premise (its Table 1) is that integer-set manipulation stays a
bounded fraction of compile time; this subsystem makes repeated set
manipulation *cheap* instead of merely bounded.  Three layers:

* :mod:`repro.cache.intern` — hash-consing: stable structural keys for
  :class:`~repro.isets.linexpr.LinExpr` / ``Constraint`` / ``Conjunct`` /
  ``IntegerSet`` / ``IntegerMap``, plus canonical (interned) conjunct
  instances so structurally identical pieces share storage and cached keys;
* :mod:`repro.cache.manager` — a unified registry of named, size-bounded
  LRU caches with hit/miss/eviction counters, used to memoize the hot pure
  ``isets`` operations (conjunct emptiness, redundancy removal, projection,
  binary set algebra) and reported per compile in the phase tables;
* :mod:`repro.cache.persist` — a persistent on-disk compile cache keyed by
  a fingerprint of (source text, :class:`CompilerOptions`, package
  version), storing the whole compiled SPMD artifact for warm-start
  compiles (``python -m repro compile/run --cache-dir ...``).

``CompilerOptions(caching="off")`` bypasses every layer, keeping an
uncached A/B path that must produce byte-identical emitted programs.
"""

from .manager import CacheManager, CacheStats, LRUCache, caches, reset_caches
from .intern import (
    conjunct_key,
    constraint_key,
    intern_conjunct,
    intern_constraint,
    intern_linexpr,
    linexpr_key,
    presburger_key,
)
from .persist import (
    CompileCache,
    compute_fingerprint,
    default_cache_dir,
)

__all__ = [
    "CacheManager",
    "CacheStats",
    "CompileCache",
    "LRUCache",
    "caches",
    "compute_fingerprint",
    "conjunct_key",
    "constraint_key",
    "default_cache_dir",
    "intern_conjunct",
    "intern_constraint",
    "intern_linexpr",
    "linexpr_key",
    "presburger_key",
    "reset_caches",
]
