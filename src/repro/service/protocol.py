"""Wire protocol of the compile service: JSON shapes, one place.

Requests and responses are plain JSON dicts; this module owns every
conversion between them and the in-process types, so the HTTP handler,
the client, the ``repro submit --json`` CLI, and the load harness all
agree on field names by construction.

Request → types:

* :func:`options_from_wire` — client ``options`` dict →
  :class:`~repro.core.options.CompilerOptions`.  Unknown fields are
  rejected (a typo must not silently compile with defaults), and the
  cache-placement fields are server-controlled: clients may choose
  ``caching`` ("on"/"off" — the A/B path), never ``cache_dir``.

Types → response:

* :func:`outcome_to_wire` — a :class:`~repro.runtime.harness.RunOutcome`
  as machine-readable JSON (stats, timings, attempts, the per-compile
  cache delta);
* :func:`error_to_wire` — a typed runtime failure with its taxonomy name
  and transience, so a client can branch exactly like in-process callers
  branch on the exception class.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Optional

from ..core.options import CompilerOptions
from ..runtime.errors import CommunicationError, is_transient

#: CompilerOptions fields a client may set over the wire.  ``cache_dir``
#: is excluded on purpose: artifact placement belongs to the server.
WIRE_OPTION_FIELDS = frozenset(
    f.name for f in dataclasses.fields(CompilerOptions)
) - {"cache_dir"}


class BadRequest(ValueError):
    """The request payload is malformed (maps to HTTP 400)."""


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def options_from_wire(data: Optional[Dict[str, object]]) -> CompilerOptions:
    data = data or {}
    if not isinstance(data, dict):
        raise BadRequest("'options' must be an object")
    unknown = set(data) - WIRE_OPTION_FIELDS
    if unknown:
        raise BadRequest(
            f"unknown or forbidden option field(s): {sorted(unknown)}"
        )
    try:
        return CompilerOptions(**data)
    except TypeError as exc:
        raise BadRequest(f"bad options: {exc}")


def attempts_to_wire(attempts) -> list:
    return [
        {
            "attempt": record.attempt,
            "backend": record.backend,
            "outcome": record.outcome,
            "error": record.error,
            "wall_ms": round(record.wall_s * 1e3, 3),
            "backoff_ms": round(record.backoff_s * 1e3, 3),
        }
        for record in attempts
    ]


def outcome_to_wire(outcome) -> Dict[str, object]:
    """Machine-readable :class:`RunOutcome` (the ``--json`` shape)."""
    stats = outcome.stats
    return {
        "backend": outcome.backend,
        "nprocs": outcome.nprocs,
        "messages": stats.total_messages,
        "payload_bytes": stats.total_bytes,
        "copies": stats.total_copies,
        "bytes_copied": stats.total_bytes_copied,
        "bytes_viewed": stats.total_bytes_viewed,
        "predicted_ms": round(outcome.predicted_time * 1e3, 6),
        "serial_ms": round(outcome.serial_time * 1e3, 6),
        "speedup": round(outcome.speedup, 4),
        "measured_wall_ms": round(outcome.max_rank_wall_s * 1e3, 3),
        "launch_wall_ms": round(outcome.launch_wall_s * 1e3, 3),
        "scalars": {
            name: float(value)
            for name, value in sorted(outcome.results[0].scalars.items())
        },
        "cache_delta": outcome.cache_stats,
        "attempts": attempts_to_wire(outcome.attempts),
        # Scheduler counters (taskgraph backend): steals, ready depth,
        # critical path, per-SCC seconds; None for other backends.
        "scheduler": stats.scheduler,
    }


def error_to_wire(exc: BaseException) -> Dict[str, object]:
    """A typed failure as JSON; mirrors the exception taxonomy.

    ``wire_type`` (when present) overrides the class name: a compile
    failure relayed from a pool worker reports the *original* exception
    type, so pooled and single-process services emit identical errors.
    """
    payload: Dict[str, object] = {
        "type": getattr(exc, "wire_type", type(exc).__name__),
        "message": str(exc),
        "transient": (
            is_transient(exc) if isinstance(exc, CommunicationError)
            else False
        ),
    }
    attempts = getattr(exc, "attempts", None)
    if attempts:
        payload["attempts"] = attempts_to_wire(attempts)
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        payload["retry_after_s"] = retry_after
    return payload


def compile_meta_to_wire(fingerprint: str, cache_kind: str,
                         compile_ms: float, source_sha: str,
                         artifact_sha: str) -> Dict[str, object]:
    """The compile-side fields shared by /compile and /run responses."""
    return {
        "fingerprint": fingerprint,
        "cache": cache_kind,
        "compile_ms": round(compile_ms, 3),
        "source_sha256": source_sha,
        "artifact_sha256": artifact_sha,
    }
