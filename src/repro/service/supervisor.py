"""Supervision core of the compile worker pool.

One :class:`WorkerSupervisor` thread owns each pool slot.  The thread is
the *only* writer of its slot's process handle, which keeps the state
machine free of cross-thread races::

    SPAWNING ──ok──▶ IDLE ◀─────────────┐
       ▲              │ task            │ reply
       │ backoff      ▼                 │
       └─ CRASHED ◀─ BUSY ──deadline──▶ STALLED (kill → respawn)
                      │
                      └──── drain+empty queue ──▶ EXITED

Crash handling: a worker that dies mid-request is reaped, its exitcode
signal-decoded into :class:`~repro.runtime.errors.WorkerDiagnostics`,
the waiting request fails with a *transient*
:class:`~repro.runtime.errors.WorkerCrashError`, and the slot respawns
under the PR 4 :class:`~repro.runtime.harness.RetryPolicy` (exponential
backoff, deterministic jitter, capped) — a crash loop never becomes a
spawn storm.  A worker that exceeds the per-request deadline is killed
with the same terminate → join → kill escalation the ``mp`` backend
uses, fails its request with :class:`WorkerStallError`, and respawns.

The :class:`Quarantine` is the poison-pill circuit breaker: every
worker *death* (crash or stall-kill) is charged to the fingerprint the
worker was serving; once one fingerprint has destroyed
``quarantine_after`` **distinct** worker processes, further submits of
that fingerprint fail fast with ``CompileQuarantinedError`` instead of
feeding it another worker.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Set

from ..runtime.errors import (
    CommunicationError,
    CompileQuarantinedError,
    WorkerCrashError,
    WorkerDiagnostics,
    WorkerStallError,
    decode_exitcode,
)
from ..runtime.harness import RetryPolicy

#: worker phases, mirrored in the shared phase Value (index == code).
PHASES = ("idle", "compile", "send")

#: default respawn governor: fast first retry, 2x growth, 2 s ceiling,
#: deterministic jitter — mirrors the launch-supervisor policy.
RESPAWN_POLICY = RetryPolicy(
    max_attempts=1_000_000,  # respawning is open-ended; backoff caps it
    backoff_base_s=0.05,
    backoff_factor=2.0,
    jitter_frac=0.25,
    backoff_cap_s=2.0,
)


def read_rss_kb(pid: Optional[int] = None) -> Optional[int]:
    """VmRSS of ``pid`` (default: self) in KiB, or None off-Linux/dead."""
    try:
        with open(f"/proc/{pid or os.getpid()}/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


class Quarantine:
    """Poison-pill circuit breaker keyed by request fingerprint."""

    def __init__(self, quarantine_after: int = 3):
        self.quarantine_after = quarantine_after
        self._lock = threading.Lock()
        #: fingerprint → set of global worker generations it destroyed.
        self._kills: Dict[str, Set[int]] = {}
        #: fingerprints currently circuit-broken (for /stats).
        self._tripped: Set[str] = set()

    def record_kill(self, fingerprint: str, generation: int) -> bool:
        """Charge a worker death to ``fingerprint``; True if it tripped."""
        if not fingerprint:
            return False
        with self._lock:
            gens = self._kills.setdefault(fingerprint, set())
            gens.add(generation)
            tripped = len(gens) >= self.quarantine_after
            if tripped:
                self._tripped.add(fingerprint)
            return tripped

    def kills(self, fingerprint: str) -> int:
        with self._lock:
            return len(self._kills.get(fingerprint, ()))

    def make_error(self, fingerprint: str) -> CompileQuarantinedError:
        with self._lock:
            kills = len(self._kills.get(fingerprint, ()))
        return CompileQuarantinedError(
            f"fingerprint {fingerprint[:16]}… quarantined: it has "
            f"killed {kills} distinct compile workers "
            f"(quarantine_after={self.quarantine_after})"
        )

    def check(self, fingerprint: str) -> None:
        """Raise ``CompileQuarantinedError`` if the fingerprint tripped."""
        with self._lock:
            tripped = fingerprint in self._tripped
        if tripped:
            raise self.make_error(fingerprint)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "after": self.quarantine_after,
                "tripped": sorted(fp[:16] for fp in self._tripped),
                "suspects": {
                    fp[:16]: len(gens)
                    for fp, gens in self._kills.items()
                    if fp not in self._tripped
                },
            }


class CompileTask:
    """One queued compile: request plus its completion latch."""

    __slots__ = ("source", "options", "fingerprint", "event", "value",
                 "exc", "enqueued_at")

    def __init__(self, source: str, options, fingerprint: str):
        self.source = source
        self.options = options
        self.fingerprint = fingerprint
        self.event = threading.Event()
        self.value = None
        self.exc: Optional[BaseException] = None
        self.enqueued_at = time.monotonic()

    def resolve(self, value) -> None:
        self.value = value
        self.event.set()

    def fail(self, exc: BaseException) -> None:
        self.exc = exc
        self.event.set()


class WorkerSupervisor(threading.Thread):
    """Owns one pool slot: spawn, dispatch, watch, kill, respawn.

    ``spawn`` is the pool's factory returning a started worker handle
    (process, parent pipe end, shared phase value, generation ids);
    keeping process creation in the pool keeps this module free of
    multiprocessing-context details.
    """

    def __init__(
        self,
        slot: int,
        tasks: "queue.Queue[Optional[CompileTask]]",
        spawn: Callable[[int, int], "object"],
        quarantine: Quarantine,
        pool_stats,
        compile_deadline_s: float = 60.0,
        respawn_policy: RetryPolicy = RESPAWN_POLICY,
        health_interval_s: float = 2.0,
    ):
        super().__init__(name=f"pool-supervisor-{slot}", daemon=True)
        self.slot = slot
        self.tasks = tasks
        self.spawn = spawn
        self.quarantine = quarantine
        self.stats = pool_stats
        self.compile_deadline_s = compile_deadline_s
        self.respawn_policy = respawn_policy
        self.health_interval_s = health_interval_s
        self.handle = None  # current worker incarnation, or None
        self.slot_gen = 0  # incarnations this slot has seen
        self.draining = threading.Event()
        self._consecutive_spawn_failures = 0
        self._req_seq = 0
        self._last_health = 0.0

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> None:
        try:
            while True:
                if not self._ensure_worker():
                    if self.draining.is_set():
                        break
                    continue
                try:
                    task = self.tasks.get(timeout=0.1)
                except queue.Empty:
                    if self.draining.is_set():
                        break
                    self._health_check()
                    continue
                if task is None:  # explicit wakeup sentinel (drain)
                    if self.draining.is_set():
                        break
                    continue
                self._serve(task)
        finally:
            self._stop_worker()

    def begin_drain(self) -> None:
        self.draining.set()

    # -- spawn / despawn ----------------------------------------------------

    def _ensure_worker(self) -> bool:
        """Make sure a live worker occupies the slot; False on give-up."""
        if self.handle is not None and self.handle.proc.is_alive():
            return True
        if self.handle is not None:
            # Died while idle (no request to blame) — plain respawn.
            self._reap("died while idle", fingerprint="")
            self.stats.incr("idle_deaths")
        if self.draining.is_set():
            return False
        if self._consecutive_spawn_failures:
            delay = self.respawn_policy.backoff_s(
                min(self._consecutive_spawn_failures, 16)
            )
            if self.draining.wait(delay):
                return False
        try:
            self.handle = self.spawn(self.slot, self.slot_gen)
            self.slot_gen += 1
            self._consecutive_spawn_failures = 0
            self.stats.incr("respawns" if self.slot_gen > 1 else "spawns")
            return True
        except Exception:
            self._consecutive_spawn_failures += 1
            self.stats.incr("spawn_failures")
            return False

    def _reap(self, why: str, fingerprint: str) -> WorkerDiagnostics:
        """Collect diagnostics from a dead handle and clear the slot."""
        handle = self.handle
        self.handle = None
        handle.proc.join(timeout=5.0)
        diag = WorkerDiagnostics(
            worker=self.slot,
            generation=handle.generation,
            pid=handle.pid,
            phase=handle.phase_name(),
            fingerprint=fingerprint,
            exitcode=handle.proc.exitcode,
            rss_kb=read_rss_kb(handle.pid) or handle.last_rss_kb,
            detail=why,
        )
        handle.close()
        return diag

    def _kill_escalate(self) -> None:
        """terminate → join → kill → join, the mp-backend shutdown idiom."""
        proc = self.handle.proc
        proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)

    def _stop_worker(self) -> None:
        """Graceful worker exit at drain: ask nicely, then escalate."""
        if self.handle is None:
            return
        handle, self.handle = self.handle, None
        try:
            handle.conn.send(("exit",))
        except (OSError, ValueError, BrokenPipeError):
            pass
        handle.proc.join(timeout=5.0)
        if handle.proc.is_alive():
            handle.proc.terminate()
            handle.proc.join(timeout=5.0)
        if handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(timeout=2.0)
        handle.close()

    # -- serving ------------------------------------------------------------

    def _serve(self, task: CompileTask) -> None:
        # The fingerprint may have been quarantined while queued.
        try:
            self.quarantine.check(task.fingerprint)
        except CompileQuarantinedError as exc:
            self.stats.incr("quarantine_rejects")
            task.fail(exc)
            return
        handle = self.handle
        self._req_seq += 1
        req_id = self._req_seq
        try:
            handle.conn.send(
                ("compile", req_id, task.source, task.options)
            )
        except (OSError, ValueError, BrokenPipeError) as exc:
            # Worker died between is_alive() and send — a crash.
            self._on_crash(task, f"dispatch failed: {exc}")
            return
        deadline = time.monotonic() + self.compile_deadline_s
        while True:
            try:
                ready = handle.conn.poll(0.05)
            except (OSError, ValueError):
                self._on_crash(task, "pipe closed mid-request")
                return
            if ready:
                try:
                    reply = handle.conn.recv()
                except (EOFError, OSError):
                    self._on_crash(task, "worker hung up mid-reply")
                    return
                self._on_reply(task, req_id, reply)
                return
            if not handle.proc.is_alive():
                self._on_crash(task, "worker process died mid-compile")
                return
            if time.monotonic() >= deadline:
                self._on_stall(task)
                return

    def _on_reply(self, task: CompileTask, req_id: int, reply) -> None:
        kind, rid = reply[0], reply[1]
        if rid != req_id:
            # A stale reply can only come from protocol desync; the slot
            # is no longer trustworthy.  Treat like a stall.
            self._on_stall(task, why=f"protocol desync ({kind} #{rid})")
            return
        if kind == "ok":
            _, _, compiled, rss_kb = reply
            self.handle.last_rss_kb = rss_kb
            self.stats.incr("compiles")
            task.resolve(compiled)
        else:  # ("err", rid, type_name, message, rss_kb)
            _, _, type_name, message, rss_kb = reply
            self.handle.last_rss_kb = rss_kb
            self.stats.incr("compile_errors")
            task.fail(RemoteCompileError(type_name, message))

    def _fail_killed(self, task: CompileTask, diag: WorkerDiagnostics,
                     fallback: CommunicationError) -> None:
        """Charge the kill to the fingerprint and fail the task.

        The task gets the transient crash/stall error while the
        quarantine budget holds, and the terminal quarantine error on
        the kill that trips it — so the unlucky tripping client is told
        the truth (never retry) rather than invited to retry.
        """
        tripped = self.quarantine.record_kill(
            task.fingerprint, diag.generation
        )
        if tripped:
            exc: CommunicationError = self.quarantine.make_error(
                task.fingerprint
            )
            exc.diagnostics.append(diag)
        else:
            exc = fallback
        task.fail(exc)

    def _on_crash(self, task: CompileTask, why: str) -> None:
        diag = self._reap(why, task.fingerprint)
        self.stats.incr("crashes")
        self._fail_killed(
            task,
            diag,
            WorkerCrashError(
                f"compile worker {self.slot} "
                f"({decode_exitcode(diag.exitcode or 1)}) died serving "
                f"{task.fingerprint[:16]}…",
                [diag],
            ),
        )

    def _on_stall(self, task: CompileTask, why: Optional[str] = None) -> None:
        self._kill_escalate()
        diag = self._reap(
            why or f"exceeded {self.compile_deadline_s:.1f}s compile "
            "deadline; killed",
            task.fingerprint,
        )
        self.stats.incr("stalls")
        self._fail_killed(
            task,
            diag,
            WorkerStallError(
                f"compile worker {self.slot} stalled serving "
                f"{task.fingerprint[:16]}…; killed and replaced",
                [diag],
            ),
        )

    # -- health -------------------------------------------------------------

    def _health_check(self) -> None:
        """Idle-time liveness probe: ping the worker, refresh rss.

        A worker that is alive but cannot answer a ping within a second
        has a wedged event loop; it is killed and respawned just like a
        deadline stall (without a request to charge it to).
        """
        now = time.monotonic()
        if now - self._last_health < self.health_interval_s:
            return
        self._last_health = now
        handle = self.handle
        self._req_seq += 1
        req_id = self._req_seq
        try:
            handle.conn.send(("ping", req_id))
            if not handle.conn.poll(1.0):
                raise OSError("ping timed out")
            reply = handle.conn.recv()
        except (OSError, ValueError, EOFError, BrokenPipeError):
            if handle.proc.is_alive():
                self._kill_escalate()
                self.stats.incr("stalls")
                self._reap("failed idle health check; killed", "")
            else:
                self._reap("died while idle", "")
                self.stats.incr("crashes")
            return
        if reply[0] == "pong" and reply[1] == req_id:
            handle.last_rss_kb = reply[2]


class RemoteCompileError(Exception):
    """A worker reported a clean, typed compile failure.

    Not a worker death: the worker survives, nothing is quarantined.
    ``wire_type`` carries the original exception class name so
    :func:`~repro.service.protocol.error_to_wire` reports the same
    ``type`` the single-process service would have.
    """

    def __init__(self, type_name: str, message: str):
        super().__init__(message)
        self.wire_type = type_name


__all__ = [
    "CompileTask",
    "PHASES",
    "Quarantine",
    "RESPAWN_POLICY",
    "RemoteCompileError",
    "WorkerSupervisor",
    "read_rss_kb",
]
