"""Structured server metrics: counters, gauges, latency percentiles.

Everything the compile server reports from ``/stats`` is collected here,
behind plain locks, with a single ``snapshot()`` that renders a
JSON-ready dict.  Latency percentiles come from a bounded reservoir
(the most recent ``maxlen`` samples per series) using the nearest-rank
method — exact for the load-harness scale, and never unbounded memory.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, Optional


class LatencyRecorder:
    """Sliding-window latency series with nearest-rank percentiles."""

    def __init__(self, maxlen: int = 20000):
        self._samples: "deque[float]" = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_s += seconds

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile (``p`` in [0, 100]) in seconds."""
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil, 1-based
        return ordered[int(rank) - 1]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            samples = sorted(self._samples)
            count = self.count
            total = self.total_s
        def pct(p: float) -> Optional[float]:
            if not samples:
                return None
            rank = max(1, -(-len(samples) * p // 100))
            return round(samples[int(rank) - 1] * 1e3, 3)
        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 3) if count else None,
            "p50_ms": pct(50),
            "p90_ms": pct(90),
            "p99_ms": pct(99),
            "max_ms": round(samples[-1] * 1e3, 3) if samples else None,
        }


class Gauge:
    """A current-value/high-watermark pair (e.g. in-flight request depth)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self.peak = 0

    def __enter__(self) -> "Gauge":
        with self._lock:
            self.value += 1
            self.peak = max(self.peak, self.value)
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self.value -= 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {"current": self.value, "peak": self.peak}


class ServerMetrics:
    """All counters and series the compile server exposes on ``/stats``."""

    #: request latency series kept per class of work.
    SERIES = ("compile_cold", "compile_hot", "compile_coalesced",
              "compile_bypass", "run")

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self.latency: Dict[str, LatencyRecorder] = {
            name: LatencyRecorder() for name in self.SERIES
        }
        self.queue_depth = Gauge()
        # Callable gauges: sampled at snapshot time, owned elsewhere
        # (e.g. the worker pool's dispatch-queue depth).  The callable
        # returns a JSON-ready value.
        self._gauges: Dict[str, object] = {}

    def register_gauge(self, name: str, fn) -> None:
        with self._lock:
            self._gauges[name] = fn

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, series: str, seconds: float) -> None:
        self.latency.setdefault(series, LatencyRecorder()).observe(seconds)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            gauges = dict(self._gauges)
        sampled = {}
        for name, fn in sorted(gauges.items()):
            try:
                sampled[name] = fn()
            except Exception:  # a dying gauge must not break /stats
                sampled[name] = None
        out = {
            "counters": self.counters(),
            "queue_depth": self.queue_depth.snapshot(),
            "latency": {
                name: recorder.snapshot()
                for name, recorder in sorted(self.latency.items())
                if recorder.count
            },
        }
        if sampled:
            out["gauges"] = sampled
        return out
