"""Sharded, lock-striped, cross-process-safe compile-artifact store.

The PR 3 persistent cache (:class:`~repro.cache.persist.CompileCache`)
is one flat directory: correct, but every writer serializes on a single
advisory lock and LRU bookkeeping would scan one ever-growing listing.
The service store shards it **by fingerprint prefix**: fingerprints are
uniform SHA-256 hex, so ``int(fp[:8], 16) % nshards`` spreads artifacts
evenly across ``shard-XX/`` subdirectories, each of which is a complete,
self-contained ``CompileCache`` with

* its own in-process mutex (lock striping — concurrent clients touching
  different shards never contend),
* its own on-disk advisory ``.lock`` (concurrent *processes* — a second
  server, ad-hoc CLI compiles — serialize per shard, not globally),
* its own LRU bound: each artifact's file mtime is refreshed on hit, and
  after every store the shard evicts oldest-mtime artifacts beyond
  ``shard_capacity``.  The bookkeeping is the directory itself — there
  is no index file to corrupt, so a crashed writer can strand at most a
  tmp file, never wedge the shard.

Artifacts stay byte-compatible with the flat cache (same payload format,
same fingerprint check on load), so anything that can read a PR 3 cache
can read one shard of this store.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, Optional

from ..cache.locks import LockTimeout
from ..cache.persist import (
    _ARTIFACT_PREFIX,
    _ARTIFACT_SUFFIX,
    CompileCache,
)


class ArtifactShard:
    """One lock stripe of the store: a bounded ``CompileCache`` directory."""

    def __init__(self, index: int, root: Path, capacity: int,
                 lock_timeout: float = 10.0, lock_stale_after: float = 30.0):
        self.index = index
        self.root = root
        self.capacity = capacity
        self.cache = CompileCache(
            str(root), lock_timeout=lock_timeout,
            lock_stale_after=lock_stale_after,
        )
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def load(self, fingerprint: str):
        compiled = self.cache.load(fingerprint)
        with self._mutex:
            if compiled is None:
                self.misses += 1
            else:
                self.hits += 1
        if compiled is not None:
            # Refresh recency so LRU eviction sees this artifact as live.
            try:
                os.utime(self.cache.path_for(fingerprint), None)
            except OSError:
                pass
        return compiled

    def store(self, fingerprint: str, compiled) -> None:
        self.cache.store(fingerprint, compiled)
        with self._mutex:
            self.stores += 1
        self._evict()

    def _evict(self) -> None:
        """Unlink oldest-mtime artifacts beyond capacity, under the shard's
        cross-process lock so two writers never double-count or race the
        sweep.  An unobtainable lock skips eviction (next store retries)."""
        try:
            lock = self.cache.lock.acquire()
        except LockTimeout:
            return
        try:
            entries = []
            for path in self.root.iterdir() if self.root.is_dir() else ():
                name = path.name
                if not (name.startswith(_ARTIFACT_PREFIX)
                        and name.endswith(_ARTIFACT_SUFFIX)):
                    continue
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue
            excess = len(entries) - self.capacity
            if excess <= 0:
                return
            entries.sort()
            for _, path in entries[:excess]:
                try:
                    path.unlink()
                except OSError:
                    continue
                with self._mutex:
                    self.evictions += 1
        finally:
            lock.release()

    def stats(self) -> Dict[str, object]:
        base = self.cache.stats()
        with self._mutex:
            return {
                "entries": base["entries"],
                "bytes": base["bytes"],
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
            }


class ShardedArtifactStore:
    """N lock-striped :class:`ArtifactShard` directories under one root."""

    def __init__(self, root: str, nshards: int = 8,
                 shard_capacity: int = 256, lock_timeout: float = 10.0,
                 lock_stale_after: float = 30.0):
        if nshards <= 0:
            raise ValueError("nshards must be positive")
        if shard_capacity <= 0:
            raise ValueError("shard_capacity must be positive")
        self.root = Path(root)
        self.shards = [
            ArtifactShard(
                i, self.root / f"shard-{i:02x}", shard_capacity,
                lock_timeout=lock_timeout,
                lock_stale_after=lock_stale_after,
            )
            for i in range(nshards)
        ]

    def shard_for(self, fingerprint: str) -> ArtifactShard:
        return self.shards[int(fingerprint[:8], 16) % len(self.shards)]

    def load(self, fingerprint: str):
        return self.shard_for(fingerprint).load(fingerprint)

    def store(self, fingerprint: str, compiled) -> None:
        self.shard_for(fingerprint).store(fingerprint, compiled)

    def clear(self) -> int:
        return sum(shard.cache.clear() for shard in self.shards)

    def stats(self) -> Dict[str, object]:
        per_shard = {
            f"shard-{shard.index:02x}": shard.stats()
            for shard in self.shards
        }
        totals: Dict[str, int] = {}
        for stats in per_shard.values():
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + int(value)
        return {
            "dir": str(self.root),
            "nshards": len(self.shards),
            "shard_capacity": self.shards[0].capacity,
            "totals": totals,
            "shards": per_shard,
        }
