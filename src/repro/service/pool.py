"""Pre-forked compile worker pool: parallel cold compiles, one supervisor
thread per slot.

Why processes: the compiler is pure Python, so concurrent cold compiles
in the threaded front-end serialize on the GIL.  The pool dispatches
each *actual* compile (post cache, post single-flight) to a worker
process over a duplex pipe; artifacts are already picklable (the PR 3
persistent cache pickles them), so the wire format is the pickle the
disk store would have written anyway — which is also why pooled
artifacts stay byte-identical to local ``caching=off`` compiles: the
worker runs exactly the ``compile_program(source, options)`` call the
front-end would have run, in a process whose inputs are the same
``(source, options)`` pair.

Start method: workers are (re)spawned from supervisor *threads*, and
``fork`` from a threaded process is deprecated (a ``DeprecationWarning``
that ``-W error`` turns fatal on 3.12).  The pool therefore uses the
``forkserver`` context (preloaded with this module) and falls back to
``spawn``; ``REPRO_POOL_START_METHOD`` overrides for debugging.

Backpressure: the dispatch queue is bounded at ``queue_depth``.  A
submit against a full queue fails *immediately* with
:class:`PoolSaturatedError` (the HTTP layer maps it to 429 +
``Retry-After``) — shedding at the door beats queueing into timeout.

The pipe protocol (all tuples, all picklable)::

    → ("compile", req_id, source, options)   compile request
    ← ("ok",  req_id, compiled, rss_kb)      artifact (set_stats inside)
    ← ("err", req_id, type, message, rss_kb) clean typed compile failure
    → ("ping", req_id) / ← ("pong", req_id, rss_kb)   idle health check
    → ("exit",)                              graceful worker shutdown

Fault injection: ``worker-crash`` / ``worker-stall`` FaultPlan kinds
fire *inside the worker* before the compile — ``rank`` selects the pool
slot, ``attempts=A`` limits the fault to the slot's first ``A``
incarnations (the standard transient-fault idiom), and the worker
SIGKILLs itself / sleeps ``ms`` so the supervisor's crash and deadline
paths are exercised by a real dead process, not a mock.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal as signal_mod
import threading
import time
from typing import Dict, Optional

from ..core.driver import compile_program
from ..runtime.errors import CommunicationError
from ..runtime.faults import FaultPlan, WORKER_FAULT_KINDS
from ..runtime.harness import RetryPolicy
from .supervisor import (
    PHASES,
    RESPAWN_POLICY,
    CompileTask,
    Quarantine,
    WorkerSupervisor,
    read_rss_kb,
)

_PHASE_INDEX = {name: i for i, name in enumerate(PHASES)}


class PoolSaturatedError(CommunicationError):
    """The dispatch queue is at capacity; shed load (HTTP 429).

    ``retry_after_s`` is the server's backoff hint: roughly the time for
    the queue to half-drain at the current deadline budget.
    """

    transient = True

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class PoolDrainingError(CommunicationError):
    """The pool is draining for shutdown; no new work is accepted."""

    transient = True


def _fire_worker_faults(injector, deadline_hint_s: float) -> None:
    """Apply pool fault kinds for one compile request, inside the worker."""
    if injector is None:
        return
    for action, delay_s in injector._fire("compile"):
        if action == "worker-crash":
            os.kill(os.getpid(), signal_mod.SIGKILL)
        elif action == "worker-stall":
            # Sleep past the supervisor's deadline; it will kill us.
            time.sleep(delay_s if delay_s > 0 else deadline_hint_s * 4)


def worker_main(
    slot: int,
    slot_gen: int,
    conn,
    phase,
    fault_plan: Optional[FaultPlan],
    deadline_hint_s: float,
) -> None:
    """Worker process entry point (top-level: spawn/forkserver picklable).

    Serves compile requests until ``("exit",)`` or EOF.  The shared
    ``phase`` value is the worker's last known phase for crash
    diagnostics; the parent reads it after a death.
    """
    signal_mod.signal(signal_mod.SIGINT, signal_mod.SIG_IGN)
    # The pool already runs one compile per core; nested set-engine thread
    # fan-out (REPRO_SET_THREADS) inside a worker would oversubscribe it.
    from ..isets import parallel as set_parallel

    set_parallel.disable()
    injector = None
    if fault_plan is not None and fault_plan.faults:
        plan = fault_plan.for_attempt(slot_gen)
        plan = FaultPlan(
            seed=plan.seed,
            faults=tuple(
                f for f in plan.faults if f.kind in WORKER_FAULT_KINDS
            ),
        )
        if plan.faults:
            injector = plan.injector(slot)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = request[0]
        if kind == "exit":
            return
        if kind == "ping":
            conn.send(("pong", request[1], read_rss_kb()))
            continue
        # ("compile", req_id, source, options)
        _, req_id, source, options = request
        phase.value = _PHASE_INDEX["compile"]
        try:
            _fire_worker_faults(injector, deadline_hint_s)
            compiled = compile_program(
                source, options.with_(profile_sets=True)
            )
        except Exception as exc:
            phase.value = _PHASE_INDEX["send"]
            conn.send(
                ("err", req_id, type(exc).__name__, str(exc),
                 read_rss_kb())
            )
        else:
            phase.value = _PHASE_INDEX["send"]
            conn.send(("ok", req_id, compiled, read_rss_kb()))
        phase.value = _PHASE_INDEX["idle"]


class WorkerHandle:
    """Parent-side view of one worker incarnation."""

    __slots__ = ("proc", "conn", "phase", "generation", "pid",
                 "last_rss_kb")

    def __init__(self, proc, conn, phase, generation: int):
        self.proc = proc
        self.conn = conn
        self.phase = phase
        self.generation = generation
        self.pid = proc.pid
        self.last_rss_kb: Optional[int] = None

    def phase_name(self) -> str:
        try:
            return PHASES[self.phase.value]
        except (IndexError, OSError):
            return "unknown"

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        # A joined Process still holds a sentinel fd; close() releases
        # it (and raises if the process is somehow still alive).
        if self.proc.exitcode is not None:
            self.proc.close()


class _PoolStats:
    """Thread-safe counters for pool lifecycle events."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counts.items()))


def _pool_context():
    """The multiprocessing context workers are spawned from.

    ``forkserver`` (preloaded) by default: respawns happen on supervisor
    threads, where a plain ``fork`` is deprecated-then-fatal under
    ``-W error``.  ``REPRO_POOL_START_METHOD`` overrides.
    """
    method = os.environ.get("REPRO_POOL_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    try:
        ctx = multiprocessing.get_context("forkserver")
        ctx.set_forkserver_preload(["repro.service.pool"])
        return ctx
    except ValueError:  # platform without forkserver
        return multiprocessing.get_context("spawn")


class WorkerPool:
    """A supervised, bounded, quarantining pool of compile workers."""

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 16,
        quarantine_after: int = 3,
        compile_deadline_s: float = 60.0,
        fault_plan: Optional[FaultPlan] = None,
        respawn_policy: RetryPolicy = RESPAWN_POLICY,
        health_interval_s: float = 2.0,
    ):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.workers = workers
        self.queue_depth = queue_depth
        self.compile_deadline_s = compile_deadline_s
        self.fault_plan = fault_plan
        self.quarantine = Quarantine(quarantine_after)
        self.stats_counters = _PoolStats()
        self.tasks: "queue.Queue[Optional[CompileTask]]" = queue.Queue(
            maxsize=queue_depth
        )
        self._ctx = _pool_context()
        self._generation_lock = threading.Lock()
        self._next_generation = 0
        self._draining = False
        self._drained = False
        self._supervisors = [
            WorkerSupervisor(
                slot=slot,
                tasks=self.tasks,
                spawn=self._spawn,
                quarantine=self.quarantine,
                pool_stats=self.stats_counters,
                compile_deadline_s=compile_deadline_s,
                respawn_policy=respawn_policy,
                health_interval_s=health_interval_s,
            )
            for slot in range(workers)
        ]

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        for sup in self._supervisors:
            sup.start()
        return self

    def _spawn(self, slot: int, slot_gen: int) -> WorkerHandle:
        with self._generation_lock:
            generation = self._next_generation
            self._next_generation += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        phase = self._ctx.Value("i", _PHASE_INDEX["idle"], lock=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(slot, slot_gen, child_conn, phase, self.fault_plan,
                  self.compile_deadline_s),
            name=f"compile-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return WorkerHandle(proc, parent_conn, phase, generation)

    def begin_drain(self) -> None:
        """Stop accepting work; queued + in-flight requests still finish."""
        self._draining = True
        for sup in self._supervisors:
            sup.begin_drain()
        # Wake supervisors blocked on an empty queue so they can exit.
        for _ in self._supervisors:
            try:
                self.tasks.put_nowait(None)
            except queue.Full:
                break

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: drain, stop workers, join supervisors.

        Returns True when every supervisor exited (and with it every
        worker: supervisors stop their worker on the way out with the
        terminate→join→kill escalation).  Idempotent.
        """
        self.begin_drain()
        deadline = time.monotonic() + timeout_s
        ok = True
        for sup in self._supervisors:
            sup.join(timeout=max(0.0, deadline - time.monotonic()))
            ok = ok and not sup.is_alive()
        if not ok:
            # Supervisors wedged (should not happen) — last-resort kill
            # so no child outlives the pool.
            for sup in self._supervisors:
                handle = sup.handle
                if handle is not None and handle.proc.is_alive():
                    handle.proc.kill()
                    handle.proc.join(timeout=2.0)
        self._drained = True
        return ok

    @property
    def draining(self) -> bool:
        return self._draining

    def alive_workers(self) -> int:
        return sum(
            1
            for sup in self._supervisors
            if sup.handle is not None and sup.handle.proc.is_alive()
        )

    # -- submitting ---------------------------------------------------------

    def compile(self, source: str, options, fingerprint: str):
        """Dispatch one compile; block until its worker resolves it.

        Raises :class:`PoolDrainingError` / :class:`PoolSaturatedError`
        before queueing, ``CompileQuarantinedError`` for poisoned
        fingerprints, and the transient ``WorkerCrashError`` /
        ``WorkerStallError`` when the serving worker is lost (callers
        retry those; see ``CompileService``).
        """
        if self._draining:
            raise PoolDrainingError(
                "compile pool is draining; not accepting work"
            )
        self.quarantine.check(fingerprint)
        task = CompileTask(source, options, fingerprint)
        try:
            self.tasks.put_nowait(task)
        except queue.Full:
            self.stats_counters.incr("shed")
            # Hint ~one queued-compile-per-worker of backoff; precise
            # drain-rate accounting is not worth the bookkeeping here.
            raise PoolSaturatedError(
                f"dispatch queue at capacity ({self.queue_depth}); "
                "retry later",
                retry_after_s=max(
                    1.0, round(self.queue_depth / max(1, self.workers))
                ),
            )
        # Bounded backstop, never a hang: worst case the task waits for
        # every queued request ahead of it to burn a full deadline.
        budget = self.compile_deadline_s * (self.queue_depth + 2) + 30.0
        if not task.event.wait(budget):
            raise PoolSaturatedError(
                "compile task lost by the pool (supervisors wedged)",
                retry_after_s=5.0,
            )
        if task.exc is not None:
            raise task.exc
        return task.value

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        counters = self.stats_counters.snapshot()
        return {
            "workers": self.workers,
            "alive": self.alive_workers(),
            "draining": self._draining,
            "queue_depth": self.tasks.qsize(),
            "queue_capacity": self.queue_depth,
            "compile_deadline_s": self.compile_deadline_s,
            "generations": self._next_generation,
            "quarantine": self.quarantine.snapshot(),
            "counters": counters,
            "rss_kb": {
                sup.slot: sup.handle.last_rss_kb
                for sup in self._supervisors
                if sup.handle is not None
            },
        }


__all__ = [
    "PoolDrainingError",
    "PoolSaturatedError",
    "WorkerHandle",
    "WorkerPool",
    "worker_main",
]
