"""Stdlib HTTP client for the compile service.

One :class:`ServiceClient` wraps one keep-alive connection, so a client
issuing many requests (the load harness, ``repro submit``) pays the TCP
handshake once.  Not thread-safe by design — give each simulated client
thread its own instance; that is also what makes the load harness an
honest model of independent clients.

Transient transport failures — connection refused (server restarting),
connection reset (worker-pool respawn churn), incomplete reads — are
retried with the same bounded exponential-backoff-plus-deterministic-
jitter policy the run supervisor uses (:class:`RetryPolicy`), but only
for *idempotent* requests: every GET, and the POSTs that are pure
functions of their payload (``/compile``, ``/run`` without faults — the
caller decides via ``idempotent=``).  The attempt history of the last
request is kept on ``client.last_attempts`` in the same shape as
``RunOutcome.attempts``, so the load harness can report client-side
retries next to server-side ones.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlparse

from ..runtime.harness import AttemptRecord, RetryPolicy

#: transport errors worth a reconnect-and-retry: the request may never
#: have reached the server, or the response was cut off mid-flight.
TRANSIENT_TRANSPORT_ERRORS = (
    http.client.HTTPException,  # includes IncompleteRead, BadStatusLine
    ConnectionError,  # refused, reset, aborted
    OSError,  # timeouts, EPIPE on a half-closed keep-alive
)

#: default client transport policy: 3 tries, 50 ms → 100 ms backoff
#: with deterministic jitter, capped well under a compile's latency.
CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    backoff_base_s=0.05,
    backoff_factor=2.0,
    jitter_frac=0.25,
    backoff_cap_s=1.0,
)


class ServiceError(RuntimeError):
    """Transport- or server-level failure of a service request."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceOverloadedError(ServiceError):
    """The server shed this request (HTTP 429); honor ``retry_after_s``."""

    def __init__(self, message: str, status: int = 429,
                 payload: Optional[dict] = None,
                 retry_after_s: float = 1.0):
        super().__init__(message, status=status, payload=payload)
        self.retry_after_s = retry_after_s


class ServiceClient:
    """A persistent-connection JSON client for one compile server."""

    def __init__(self, url: str = None, host: str = "127.0.0.1",
                 port: int = 8737, timeout: float = 600.0,
                 retry_policy: Optional[RetryPolicy] = None):
        if url:
            parsed = urlparse(url)
            if parsed.scheme not in ("http", ""):
                raise ValueError(f"unsupported scheme in {url!r}")
            host = parsed.hostname or host
            port = parsed.port or port
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy or CLIENT_RETRY_POLICY
        #: attempt history of the most recent request (AttemptRecord
        #: shape, ``backend="http"``) — mirrors ``RunOutcome.attempts``.
        self.last_attempts: List[AttemptRecord] = []
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                payload: Optional[dict] = None,
                idempotent: Optional[bool] = None,
                check: bool = True) -> dict:
        """One JSON request → decoded JSON response.

        ``idempotent`` defaults to ``method == "GET"``; idempotent
        requests retry transient transport errors under the client's
        :class:`RetryPolicy`, non-idempotent ones get the single
        stale-keep-alive reconnect only.  ``check=False`` returns error
        payloads (429/5xx) instead of raising — readiness probes want
        the 503 body, not an exception.
        """
        if idempotent is None:
            idempotent = method.upper() == "GET"
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        policy = self.retry_policy
        # Non-idempotent requests still get one reconnect: a stale
        # keep-alive connection fails before any bytes reach the server.
        max_attempts = policy.max_attempts if idempotent else 2
        self.last_attempts = []
        for attempt in range(max_attempts):
            conn = self._connection()
            start = time.perf_counter()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except TRANSIENT_TRANSPORT_ERRORS as exc:
                self.close()
                wall = time.perf_counter() - start
                last = attempt == max_attempts - 1
                backoff = 0.0 if last else policy.backoff_s(attempt)
                self.last_attempts.append(AttemptRecord(
                    attempt=attempt + 1,
                    backend="http",
                    outcome=type(exc).__name__,
                    error=str(exc),
                    wall_s=wall,
                    backoff_s=backoff,
                ))
                if last:
                    raise
                time.sleep(backoff)
                continue
            self.last_attempts.append(AttemptRecord(
                attempt=attempt + 1,
                backend="http",
                outcome="ok",
                wall_s=time.perf_counter() - start,
            ))
            break
        try:
            data = json.loads(raw)
        except ValueError:
            raise ServiceError(
                f"{method} {path}: non-JSON response "
                f"(status {response.status})",
                status=response.status,
            )
        if not check:
            return data
        if response.status == 429:
            retry_after = response.headers.get("Retry-After")
            raise ServiceOverloadedError(
                f"{method} {path}: server shedding load",
                payload=data,
                retry_after_s=float(retry_after) if retry_after else 1.0,
            )
        if response.status >= 500:
            raise ServiceError(
                f"{method} {path}: server error "
                f"{data.get('error', {}).get('message', '')}",
                status=response.status, payload=data,
            )
        return data

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        """Readiness payload; a 503 body is returned, not raised."""
        return self.request("GET", "/healthz", check=False)

    def livez(self) -> dict:
        return self.request("GET", "/livez", check=False)

    def ready(self) -> bool:
        try:
            return bool(self.healthz().get("ok"))
        except TRANSIENT_TRANSPORT_ERRORS:
            return False

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown", payload={})

    def compile(self, source: str,
                options: Optional[Dict[str, object]] = None) -> dict:
        # Compiling is a pure function of (source, options): safe to
        # retry through connection resets caused by pool churn.
        return self.request(
            "POST", "/compile",
            payload={"source": source, "options": options or {}},
            idempotent=True,
        )

    def run(
        self,
        source: str,
        params: Optional[Dict[str, int]] = None,
        nprocs: int = 4,
        backend: Optional[str] = None,
        validate: bool = True,
        options: Optional[Dict[str, object]] = None,
        retries: int = 0,
        fallback_backends: Sequence[str] = (),
        fault_spec: Optional[str] = None,
        fault_seed: int = 0,
        recv_timeout_s: Optional[float] = None,
        run_timeout_s: Optional[float] = None,
    ) -> dict:
        payload: Dict[str, object] = {
            "source": source,
            "options": options or {},
            "params": params or {},
            "nprocs": nprocs,
            "validate": validate,
        }
        if backend:
            payload["backend"] = backend
        if retries:
            payload["retries"] = retries
        if fallback_backends:
            payload["fallback_backends"] = list(fallback_backends)
        if fault_spec:
            payload["fault_spec"] = fault_spec
            payload["fault_seed"] = fault_seed
        if recv_timeout_s is not None:
            payload["recv_timeout_s"] = recv_timeout_s
        if run_timeout_s is not None:
            payload["run_timeout_s"] = run_timeout_s
        return self.request("POST", "/run", payload=payload)
