"""Stdlib HTTP client for the compile service.

One :class:`ServiceClient` wraps one keep-alive connection, so a client
issuing many requests (the load harness, ``repro submit``) pays the TCP
handshake once.  Not thread-safe by design — give each simulated client
thread its own instance; that is also what makes the load harness an
honest model of independent clients.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Sequence
from urllib.parse import urlparse


class ServiceError(RuntimeError):
    """Transport- or server-level failure of a service request."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """A persistent-connection JSON client for one compile server."""

    def __init__(self, url: str = None, host: str = "127.0.0.1",
                 port: int = 8737, timeout: float = 600.0):
        if url:
            parsed = urlparse(url)
            if parsed.scheme not in ("http", ""):
                raise ValueError(f"unsupported scheme in {url!r}")
            host = parsed.hostname or host
            port = parsed.port or port
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # One reconnect attempt: the server may have idled out the
        # keep-alive connection between two requests.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            data = json.loads(raw)
        except ValueError:
            raise ServiceError(
                f"{method} {path}: non-JSON response "
                f"(status {response.status})",
                status=response.status,
            )
        if response.status >= 500:
            raise ServiceError(
                f"{method} {path}: server error "
                f"{data.get('error', {}).get('message', '')}",
                status=response.status, payload=data,
            )
        return data

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown", payload={})

    def compile(self, source: str,
                options: Optional[Dict[str, object]] = None) -> dict:
        return self.request(
            "POST", "/compile",
            payload={"source": source, "options": options or {}},
        )

    def run(
        self,
        source: str,
        params: Optional[Dict[str, int]] = None,
        nprocs: int = 4,
        backend: Optional[str] = None,
        validate: bool = True,
        options: Optional[Dict[str, object]] = None,
        retries: int = 0,
        fallback_backends: Sequence[str] = (),
        fault_spec: Optional[str] = None,
        fault_seed: int = 0,
        recv_timeout_s: Optional[float] = None,
        run_timeout_s: Optional[float] = None,
    ) -> dict:
        payload: Dict[str, object] = {
            "source": source,
            "options": options or {},
            "params": params or {},
            "nprocs": nprocs,
            "validate": validate,
        }
        if backend:
            payload["backend"] = backend
        if retries:
            payload["retries"] = retries
        if fallback_backends:
            payload["fallback_backends"] = list(fallback_backends)
        if fault_spec:
            payload["fault_spec"] = fault_spec
            payload["fault_seed"] = fault_seed
        if recv_timeout_s is not None:
            payload["recv_timeout_s"] = recv_timeout_s
        if run_timeout_s is not None:
            payload["run_timeout_s"] = run_timeout_s
        return self.request("POST", "/run", payload=payload)
