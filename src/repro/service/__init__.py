"""Long-lived compile service (see DESIGN.md §10).

A threaded HTTP server multiplexing concurrent compile+run requests over
a sharded, cross-process-safe artifact store with single-flight batching
of identical in-flight compiles:

* :mod:`repro.service.server` — :class:`CompileService` (the
  protocol-agnostic core) and the stdlib HTTP layer (``repro serve``);
* :mod:`repro.service.store` — fingerprint-prefix-sharded artifact
  store, lock-striped, per-shard LRU eviction;
* :mod:`repro.service.singleflight` — in-flight request coalescing;
* :mod:`repro.service.client` — keep-alive JSON client
  (``repro submit``, the load harness);
* :mod:`repro.service.protocol` — every wire shape in one place;
* :mod:`repro.service.metrics` — counters, queue depth, p50/p99.
"""

from .client import ServiceClient, ServiceError
from .server import CompileService, ServiceHTTPServer, create_server
from .singleflight import SingleFlight
from .store import ArtifactShard, ShardedArtifactStore

__all__ = [
    "ArtifactShard",
    "CompileService",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ShardedArtifactStore",
    "SingleFlight",
    "create_server",
]
