"""Long-lived compile service (see DESIGN.md §10 and §13).

A threaded HTTP server multiplexing concurrent compile+run requests over
a sharded, cross-process-safe artifact store with single-flight batching
of identical in-flight compiles, and (``workers >= 1``) a supervised
pre-forked worker pool running the actual compiles in parallel:

* :mod:`repro.service.server` — :class:`CompileService` (the
  protocol-agnostic core) and the stdlib HTTP layer (``repro serve``);
* :mod:`repro.service.pool` — the compile worker pool: bounded dispatch
  queue, load shedding, pipe protocol, graceful drain;
* :mod:`repro.service.supervisor` — per-slot supervision: crash
  detection + respawn backoff, compile deadlines, poison-pill
  quarantine;
* :mod:`repro.service.store` — fingerprint-prefix-sharded artifact
  store, lock-striped, per-shard LRU eviction;
* :mod:`repro.service.singleflight` — in-flight request coalescing with
  leader-failure handoff;
* :mod:`repro.service.client` — keep-alive JSON client with bounded
  transport retries (``repro submit``, the load harness);
* :mod:`repro.service.protocol` — every wire shape in one place;
* :mod:`repro.service.metrics` — counters, gauges, queue depth,
  p50/p99.
"""

from .client import ServiceClient, ServiceError, ServiceOverloadedError
from .pool import PoolDrainingError, PoolSaturatedError, WorkerPool
from .server import CompileService, ServiceHTTPServer, create_server
from .singleflight import SingleFlight
from .supervisor import Quarantine, RemoteCompileError, WorkerSupervisor
from .store import ArtifactShard, ShardedArtifactStore

__all__ = [
    "ArtifactShard",
    "CompileService",
    "PoolDrainingError",
    "PoolSaturatedError",
    "Quarantine",
    "RemoteCompileError",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloadedError",
    "ShardedArtifactStore",
    "SingleFlight",
    "WorkerPool",
    "WorkerSupervisor",
    "create_server",
]
