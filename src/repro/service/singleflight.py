"""Single-flight batching: identical in-flight keys compute once.

When a burst of clients submits the same program (same compile
fingerprint) before the first compile finishes, compiling it once per
request wastes exactly ``burst - 1`` compiles — and on a GIL-bound
compiler, serializes everyone behind redundant work.  A
:class:`SingleFlight` group collapses the burst: the first caller (the
*leader*) runs the computation, every concurrent duplicate (the
*waiters*) blocks on the leader's result and receives the same value.
A leader failure propagates the same exception to every waiter — a bad
program does not get retried once per queued client.

Keys are only coalesced while in flight: once the leader finishes, the
key leaves the table and the next request for it starts fresh (by then
it is normally a cache hit instead).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Tuple, TypeVar

T = TypeVar("T")


class _Call:
    __slots__ = ("event", "value", "exc", "waiters")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.exc: BaseException = None
        self.waiters = 0


class SingleFlight:
    """Collapse concurrent calls with equal keys into one execution."""

    def __init__(self):
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}
        #: total requests that were answered by another call's result.
        self.coalesced_total = 0
        #: total leader executions.
        self.led_total = 0

    def in_flight(self) -> int:
        with self._lock:
            return len(self._calls)

    def do(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Return ``(result, coalesced)`` for ``fn`` keyed by ``key``.

        ``coalesced`` is True when this call rode on another in-flight
        execution instead of running ``fn`` itself.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                self.led_total += 1
                leader = True
            else:
                call.waiters += 1
                self.coalesced_total += 1
                leader = False
        if leader:
            try:
                call.value = fn()
            except BaseException as exc:
                call.exc = exc
                raise
            finally:
                with self._lock:
                    del self._calls[key]
                call.event.set()
            return call.value, False
        call.event.wait()
        if call.exc is not None:
            raise call.exc
        return call.value, True
