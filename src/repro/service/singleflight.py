"""Single-flight batching: identical in-flight keys compute once.

When a burst of clients submits the same program (same compile
fingerprint) before the first compile finishes, compiling it once per
request wastes exactly ``burst - 1`` compiles — and on a GIL-bound
compiler, serializes everyone behind redundant work.  A
:class:`SingleFlight` group collapses the burst: the first caller (the
*leader*) runs the computation, every concurrent duplicate (the
*waiters*) blocks on the leader's result and receives the same value.

Leader failure has two regimes:

* **Permanent** (the default, or when ``retryable`` rejects the
  exception): the exception propagates to every waiter — a bad program
  does not get retried once per queued client.
* **Transient** (``retryable(exc)`` is true — e.g. the compile-pool
  worker serving the leader was killed): waiters are *handed off*
  instead of failed.  Each woken waiter re-enters the table; the first
  one in becomes the new leader and re-runs ``fn``, the rest coalesce
  behind it.  ``max_handoffs`` bounds the number of successive leader
  deaths one request will outlive, so a key that kills every leader
  eventually propagates the error instead of looping.  The crashed
  leader itself always sees its own exception — handoff is for the
  riders, not the driver.

``wait_timeout_s`` is the no-hang escape hatch: a waiter that has been
parked longer than the timeout stops trusting the leader entirely and
runs ``fn`` itself, uncoalesced.  With a deterministic ``fn`` (ours are
keyed by compile fingerprint) the duplicated work is wasted, not wrong.

Keys are only coalesced while in flight: once the leader finishes, the
key leaves the table and the next request for it starts fresh (by then
it is normally a cache hit instead).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

T = TypeVar("T")


class _Call:
    __slots__ = ("event", "value", "exc", "waiters", "handoff")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.exc: BaseException = None
        self.waiters = 0
        #: leader died of a retryable error; woken waiters should re-enter
        #: the table instead of re-raising ``exc``.
        self.handoff = False


class SingleFlight:
    """Collapse concurrent calls with equal keys into one execution."""

    def __init__(self):
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}
        #: total requests that were answered by another call's result.
        self.coalesced_total = 0
        #: total leader executions.
        self.led_total = 0
        #: total waiters re-dispatched after their leader died retryably.
        self.handoffs_total = 0
        #: total waiters that gave up on a leader and ran uncoalesced.
        self.timeouts_total = 0

    def in_flight(self) -> int:
        with self._lock:
            return len(self._calls)

    def do(
        self,
        key: Hashable,
        fn: Callable[[], T],
        *,
        retryable: Optional[Callable[[BaseException], bool]] = None,
        max_handoffs: int = 2,
        wait_timeout_s: Optional[float] = None,
    ) -> Tuple[T, bool]:
        """Return ``(result, coalesced)`` for ``fn`` keyed by ``key``.

        ``coalesced`` is True when this call rode on another in-flight
        execution instead of running ``fn`` itself.  A handed-off waiter
        that ends up re-running ``fn`` reports ``coalesced=False`` — it
        did the work.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                self.led_total += 1
                leader = True
            else:
                call.waiters += 1
                self.coalesced_total += 1
                leader = False
        if leader:
            try:
                call.value = fn()
            except BaseException as exc:
                call.exc = exc
                with self._lock:
                    # Hand waiters off only when there *are* waiters, the
                    # failure is retryable, and the handoff budget allows
                    # another leader generation.
                    call.handoff = (
                        call.waiters > 0
                        and max_handoffs > 0
                        and retryable is not None
                        and retryable(exc)
                    )
                    del self._calls[key]
                call.event.set()
                raise
            else:
                with self._lock:
                    del self._calls[key]
                call.event.set()
            return call.value, False
        if not call.event.wait(wait_timeout_s):
            # Leader still running past the deadline.  Do the work
            # ourselves rather than hang; the in-flight entry is left
            # alone so other waiters keep their coalescing.
            with self._lock:
                self.timeouts_total += 1
            return fn(), False
        if call.handoff:
            with self._lock:
                self.handoffs_total += 1
            return self.do(
                key,
                fn,
                retryable=retryable,
                max_handoffs=max_handoffs - 1,
                wait_timeout_s=wait_timeout_s,
            )
        if call.exc is not None:
            raise call.exc
        return call.value, True
