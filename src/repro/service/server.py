"""The compile server: a long-lived, concurrency-safe compile+run service.

Architecture (stdlib only)::

    ThreadingHTTPServer (one thread per connection, keep-alive)
        └── CompileService          protocol-agnostic core, also usable
            ├── ShardedArtifactStore    in-process directly (tests, the
            ├── SingleFlight            cache-roundtrip gate)
            ├── ServerMetrics
            └── WorkerPool          optional (workers >= 1): actual
                                    compiles run in supervised worker
                                    processes (see DESIGN §13)

Request flow for ``POST /run`` (``/compile`` stops after step 3):

1. parse+validate the JSON body (:mod:`repro.service.protocol`);
2. fingerprint the (source, options) pair — the same fingerprint the
   PR 3 persistent cache uses, so server and CLI caches interoperate;
3. resolve the artifact: in-memory LRU → sharded disk store →
   **single-flight compile** (concurrent identical fingerprints compile
   once; waiters are counted as *coalesced*).  ``caching="off"``
   requests bypass every layer — the A/B guarantee holds through the
   service;
4. run the program under the PR 4 supervisor: a crashing backend, a
   deadlock, or a divergent result returns a *typed* JSON error to that
   one client (``ok: false`` with the taxonomy name and transience);
   the server itself never dies with the request.

``GET /stats`` reports per-shard hit/miss/eviction counters, in-memory
artifact cache stats, single-flight coalescing totals, queue depth, and
p50/p99 latency per request class.  ``POST /shutdown`` stops the server
(the server binds loopback by default; there is no authentication —
do not expose it beyond a trusted host).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..cache.manager import caches
from ..cache.persist import compute_fingerprint, default_cache_dir
from ..core.driver import CompiledProgram, compile_program
from ..isets.profile import SetOpProfiler
from ..runtime.errors import CommunicationError, is_transient
from ..runtime.faults import FaultPlan
from ..runtime.harness import RetryPolicy, ValidationError, run_compiled
from ..runtime.options import RuntimeOptions
from .metrics import ServerMetrics
from .pool import PoolDrainingError, PoolSaturatedError, WorkerPool
from .protocol import (
    BadRequest,
    compile_meta_to_wire,
    error_to_wire,
    options_from_wire,
    outcome_to_wire,
    sha256_text,
)
from .singleflight import SingleFlight
from .store import ShardedArtifactStore

DEFAULT_PORT = 8737


class CompileService:
    """Protocol-agnostic request core shared by HTTP and in-process use."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        nshards: int = 8,
        shard_capacity: int = 256,
        memory_artifacts: int = 64,
        workers: int = 0,
        queue_depth: int = 16,
        quarantine_after: int = 3,
        compile_deadline_s: float = 60.0,
        pool_fault_plan: Optional[FaultPlan] = None,
    ):
        self.store = ShardedArtifactStore(
            cache_dir or default_cache_dir(),
            nshards=nshards,
            shard_capacity=shard_capacity,
        )
        self.flight = SingleFlight()
        self.metrics = ServerMetrics()
        # workers=0: compile in-process (the pre-pool behavior, right
        # for tests and one-shot use).  workers>=1: dispatch each actual
        # compile to the supervised worker pool.
        self.pool: Optional[WorkerPool] = None
        if workers:
            self.pool = WorkerPool(
                workers=workers,
                queue_depth=queue_depth,
                quarantine_after=quarantine_after,
                compile_deadline_s=compile_deadline_s,
                fault_plan=pool_fault_plan,
            ).start()
            self.metrics.register_gauge(
                "pool_queue",
                lambda: {
                    "current": self.pool.tasks.qsize(),
                    "capacity": self.pool.queue_depth,
                },
            )
        self._draining = False
        # Deserialized artifacts kept hot in memory (bounded; the disk
        # store remains the source of truth and survives restarts).
        self._mem = caches.register(
            "service.artifacts", maxsize=memory_artifacts
        )
        # Fleet-wide set-engine profile: every actual compile (cold,
        # coalesced-leader, bypass) runs with ``profile_sets`` on and folds
        # its per-compile snapshot in here; ``/stats`` reports the
        # aggregate.  Hits don't re-count — they did no set work.
        self._set_profile = SetOpProfiler()
        self._set_profile_lock = threading.Lock()
        self.started_at = time.time()

    def _compile_profiled(self, source: str, options) -> CompiledProgram:
        """One actual compile, profiled and folded into the aggregate."""
        compiled = compile_program(source, options.with_(profile_sets=True))
        self._merge_set_stats(compiled)
        return compiled

    def _merge_set_stats(self, compiled: CompiledProgram) -> None:
        snapshot = compiled.phases.set_stats
        if snapshot:
            with self._set_profile_lock:
                self._set_profile.merge_snapshot(snapshot)

    def _compile_actual(
        self, source: str, options, fingerprint: str
    ) -> CompiledProgram:
        """Route one actual compile: in-process, or pooled with retry.

        The worker runs the identical ``compile_program(source,
        options.with_(profile_sets=True))`` call the in-process path
        runs, so pooled artifacts are byte-identical.  A transient
        worker death (crash, stall) retries on a respawned worker; the
        loop is bounded because every death charges the fingerprint's
        quarantine budget, which eventually converts retries into the
        terminal ``CompileQuarantinedError``.
        """
        if self.pool is None:
            return self._compile_profiled(source, options)
        # +2: quarantine_after deaths trip the breaker; the slack covers
        # unlucky interleavings with deaths charged by other requests.
        max_attempts = self.pool.quarantine.quarantine_after + 2
        attempt = 0
        while True:
            attempt += 1
            try:
                compiled = self.pool.compile(source, options, fingerprint)
            except (PoolSaturatedError, PoolDrainingError):
                raise  # pre-queue rejections are the client's to retry
            except CommunicationError as exc:
                if not is_transient(exc) or attempt >= max_attempts:
                    raise
                self.metrics.incr("pool.compile_retries")
                continue
            self._merge_set_stats(compiled)
            return compiled

    # -- compile -----------------------------------------------------------

    def compile_source(
        self, source: str, options_data: Optional[dict] = None
    ) -> Tuple[CompiledProgram, Dict[str, object]]:
        """Resolve an artifact for (source, options); returns it plus the
        compile metadata dict (fingerprint, cache kind, latency)."""
        if not isinstance(source, str) or not source.strip():
            raise BadRequest("'source' must be non-empty program text")
        options = options_from_wire(options_data)
        fingerprint = compute_fingerprint(source, options)
        start = time.perf_counter()

        if options.caching == "off":
            # The A/B path: no memoization, no artifact reuse, no
            # single-flight result sharing across options (the compile
            # itself still coalesces with an identical off request).
            compiled, coalesced = self.flight.do(
                ("off", fingerprint),
                lambda: self._compile_actual(source, options, fingerprint),
                retryable=is_transient,
            )
            kind = "bypass"
        else:
            compiled, kind = self._cached_compile(source, options,
                                                  fingerprint)
            coalesced = kind == "coalesced"
        elapsed = time.perf_counter() - start
        self.metrics.incr(f"compile.{kind}")
        self.metrics.observe(f"compile_{kind}", elapsed)
        meta = compile_meta_to_wire(
            fingerprint,
            kind,
            elapsed * 1e3,
            sha256_text(source),
            sha256_text(compiled.source),
        )
        if coalesced:
            meta["coalesced"] = True
        # The set-engine profile of the compile that built this artifact
        # (travels with cached artifacts; hits report their cold compile).
        if compiled.phases.set_stats:
            meta["set_ops"] = compiled.phases.set_stats
        return compiled, meta

    def _cached_compile(self, source, options, fingerprint):
        found, value = self._mem.lookup(fingerprint)
        if found:
            return value, "hot"
        compiled = self.store.load(fingerprint)
        if compiled is not None:
            compiled.cache_hit = True
            self._mem.put(fingerprint, compiled)
            return compiled, "hot"

        def compile_and_store():
            built = self._compile_actual(
                source, options.with_(cache_dir=None), fingerprint
            )
            self.store.store(fingerprint, built)
            self._mem.put(fingerprint, built)
            return built

        # retryable: waiters coalesced behind a leader whose pool worker
        # was killed hand off to a fresh leader instead of all failing
        # with the dead leader's transient error.
        compiled, coalesced = self.flight.do(
            fingerprint, compile_and_store, retryable=is_transient
        )
        return compiled, ("coalesced" if coalesced else "cold")

    # -- requests ----------------------------------------------------------

    def handle_compile(self, payload: dict) -> Dict[str, object]:
        try:
            _, meta = self.compile_source(
                payload.get("source"), payload.get("options")
            )
        except (PoolSaturatedError, PoolDrainingError):
            raise  # mapped to 429 / 503 by the HTTP layer
        except CommunicationError as exc:
            # Quarantined fingerprint or an exhausted worker-death retry
            # loop: a typed per-request failure, not a server error.
            self.metrics.incr("compile.failed")
            return {"ok": False, "error": error_to_wire(exc)}
        return {"ok": True, **meta}

    def handle_run(self, payload: dict) -> Dict[str, object]:
        try:
            compiled, meta = self.compile_source(
                payload.get("source"), payload.get("options")
            )
        except (PoolSaturatedError, PoolDrainingError):
            raise
        except CommunicationError as exc:
            self.metrics.incr("compile.failed")
            return {"ok": False, "error": error_to_wire(exc)}
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise BadRequest("'params' must be an object of integers")
        try:
            params = {str(k): int(v) for k, v in params.items()}
        except (TypeError, ValueError):
            raise BadRequest("'params' values must be integers")
        nprocs = int(payload.get("nprocs", 4))
        backend = payload.get("backend") or "threads"
        validate = bool(payload.get("validate", True))
        retries = int(payload.get("retries", 0))
        fallback = tuple(payload.get("fallback_backends") or ())

        runtime_options = RuntimeOptions(backend=backend)
        for knob in ("recv_timeout_s", "run_timeout_s"):
            if payload.get(knob) is not None:
                try:
                    value = float(payload[knob])
                except (TypeError, ValueError):
                    raise BadRequest(f"'{knob}' must be a number")
                if value <= 0:
                    raise BadRequest(f"'{knob}' must be positive")
                runtime_options = runtime_options.with_(**{knob: value})
        if payload.get("fault_spec"):
            try:
                plan = FaultPlan.parse(
                    payload["fault_spec"],
                    seed=int(payload.get("fault_seed", 0)),
                )
            except ValueError as exc:
                raise BadRequest(f"fault_spec: {exc}")
            runtime_options = runtime_options.with_(fault_plan=plan)
        if fallback:
            runtime_options = runtime_options.with_(
                fallback_backends=fallback
            )
        retry_policy = (
            RetryPolicy(max_attempts=retries + 1)
            if retries or fallback
            else None
        )

        start = time.perf_counter()
        # The supervisor boundary: typed failures become per-request
        # error payloads, never a dead server thread.
        try:
            outcome = run_compiled(
                compiled,
                params=params,
                nprocs=nprocs,
                validate=validate,
                backend=backend,
                runtime_options=runtime_options,
                retry_policy=retry_policy,
            )
        except (CommunicationError, ValidationError, ValueError) as exc:
            self.metrics.incr("run.failed")
            return {"ok": False, **meta, "error": error_to_wire(exc)}
        elapsed = time.perf_counter() - start
        self.metrics.incr("run.ok")
        self.metrics.observe("run", elapsed)
        return {
            "ok": True,
            **meta,
            "run_ms": round(elapsed * 1e3, 3),
            "validated": validate,
            "outcome": outcome_to_wire(outcome),
        }

    # -- lifecycle ---------------------------------------------------------

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Block until the service is ready (>=1 worker up, not draining).

        Pool-less services are ready immediately.  Returns readiness.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            ready, _ = self.readiness()
            if ready or time.monotonic() >= deadline:
                return ready
            time.sleep(0.02)

    def readiness(self) -> Tuple[bool, Dict[str, object]]:
        """(ready, payload) for ``/healthz`` — the load-balancer view."""
        if self._draining or (self.pool is not None
                              and self.pool.draining):
            return False, {"ok": False, "reason": "draining"}
        if self.pool is not None:
            alive = self.pool.alive_workers()
            if alive < 1:
                return False, {
                    "ok": False,
                    "reason": "no compile workers up",
                    "workers": {"alive": 0,
                                "configured": self.pool.workers},
                }
        return True, {"ok": True}

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Flip readiness off and stop the pool accepting new work."""
        self._draining = True
        if self.pool is not None:
            self.pool.begin_drain()

    def close(self, timeout_s: float = 30.0) -> bool:
        """Graceful drain: finish in-flight compiles, stop every worker."""
        self.begin_drain()
        if self.pool is not None:
            return self.pool.drain(timeout_s)
        return True

    def stats(self) -> Dict[str, object]:
        memo = {
            name: {
                "hits": s.hits,
                "misses": s.misses,
                "evictions": s.evictions,
                "size": s.size,
                "maxsize": s.maxsize,
            }
            for name, s in caches.stats().items()
            if s.lookups or s.size
        }
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "store": self.store.stats(),
            "single_flight": {
                "led": self.flight.led_total,
                "coalesced": self.flight.coalesced_total,
                "handoffs": self.flight.handoffs_total,
                "timeouts": self.flight.timeouts_total,
                "in_flight": self.flight.in_flight(),
            },
            "pool": self.pool.stats() if self.pool else None,
            "memo_caches": memo,
            "set_ops": self._set_ops_snapshot(),
            **self.metrics.snapshot(),
        }

    def _set_ops_snapshot(self) -> Dict[str, object]:
        with self._set_profile_lock:
            return self._set_profile.snapshot()


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops (kernel-resets) connections
    # the moment a burst of clients arrives faster than accept() runs.
    request_queue_size = 128

    def __init__(self, address, service: CompileService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    def shutdown_gracefully(self, timeout_s: float = 30.0) -> None:
        """Drain-then-stop: flip readiness off, finish in-flight work,
        stop every worker (terminate→join→kill), then stop serving.

        The order matters: readiness goes false *first* so balancers
        stop routing, the pool drains while the HTTP front-end still
        answers (`/livez`, in-flight requests), and only then does the
        accept loop stop."""
        self.service.begin_drain()
        self.service.close(timeout_s=timeout_s)
        self.shutdown()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-compile-service"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("missing request body")
        try:
            payload = json.loads(self.rfile.read(length))
        except ValueError:
            raise BadRequest("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        service = self.server.service
        headers: Dict[str, str] = {}
        with service.metrics.queue_depth:
            try:
                status, payload = handler()
            except BadRequest as exc:
                service.metrics.incr("requests.bad")
                status, payload = 400, {"ok": False,
                                        "error": error_to_wire(exc)}
            except PoolSaturatedError as exc:
                # Load shedding: tell the client when to come back.
                service.metrics.incr("requests.shed")
                status, payload = 429, {"ok": False,
                                        "error": error_to_wire(exc)}
                headers["Retry-After"] = str(
                    max(1, int(round(exc.retry_after_s)))
                )
            except PoolDrainingError as exc:
                service.metrics.incr("requests.draining")
                status, payload = 503, {"ok": False,
                                        "error": error_to_wire(exc)}
            except Exception as exc:  # never kill the connection thread
                service.metrics.incr("requests.error")
                status, payload = 500, {"ok": False,
                                        "error": error_to_wire(exc)}
        self._send_json(status, payload, headers=headers)

    # -- routes ------------------------------------------------------------

    def do_GET(self):
        if self.path == "/healthz":
            # Readiness: should a load balancer route here?  503 while
            # draining or with no compile worker up; the healthy payload
            # stays {"ok": true} for pre-split clients.
            def readiness():
                ready, payload = self.server.service.readiness()
                return (200 if ready else 503), payload
            self._dispatch(readiness)
        elif self.path == "/livez":
            # Liveness: is the process serving HTTP at all?  Always yes
            # if this handler runs — draining servers are still alive.
            self._dispatch(lambda: (200, {"ok": True}))
        elif self.path == "/stats":
            self._dispatch(lambda: (200, self.server.service.stats()))
        else:
            self._send_json(404, {"ok": False,
                                  "error": {"type": "NotFound",
                                            "message": self.path}})

    def do_POST(self):
        service = self.server.service
        if self.path == "/compile":
            self._dispatch(
                lambda: (200, service.handle_compile(self._read_json()))
            )
        elif self.path == "/run":
            self._dispatch(
                lambda: (200, service.handle_run(self._read_json()))
            )
        elif self.path == "/shutdown":
            self._send_json(200, {"ok": True, "stopping": True})
            threading.Thread(target=self.server.shutdown_gracefully,
                             daemon=True).start()
        else:
            self._send_json(404, {"ok": False,
                                  "error": {"type": "NotFound",
                                            "message": self.path}})


def create_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = None,
    nshards: int = 8,
    shard_capacity: int = 256,
    quiet: bool = True,
    service: Optional[CompileService] = None,
    workers: int = 0,
    queue_depth: int = 16,
    quarantine_after: int = 3,
    compile_deadline_s: float = 60.0,
    pool_fault_plan: Optional[FaultPlan] = None,
) -> ServiceHTTPServer:
    """Bind (but do not start) a compile server; ``port=0`` picks a free
    port, readable afterwards from ``server.server_address``."""
    service = service or CompileService(
        cache_dir=cache_dir,
        nshards=nshards,
        shard_capacity=shard_capacity,
        workers=workers,
        queue_depth=queue_depth,
        quarantine_after=quarantine_after,
        compile_deadline_s=compile_deadline_s,
        pool_fault_plan=pool_fault_plan,
    )
    return ServiceHTTPServer((host, port), service, quiet=quiet)
