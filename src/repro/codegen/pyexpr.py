"""Emission of set-framework objects as Python source expressions.

The generated node program runs with a tiny prelude (``_cdiv``, ``_fdiv``,
``_align``) injected by the emitter; loop bounds with divisors become calls
to those helpers, stride loops become aligned ``range`` calls, and guard
constraints become boolean expressions.  Conjuncts whose wildcards are not
in stride form fall back to an exact membership closure registered with the
runtime (``rt.member``), so generated guards are always exact.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..isets import (
    Conjunct,
    Constraint,
    IntegerSet,
    LinExpr,
    SymbolicBound,
)
from ..isets.errors import CodegenError
from ..isets.ops import _pivot_wildcard

PRELUDE = '''\
def _fdiv(a, b):
    """floor(a/b) for positive divisor b."""
    return a // b

def _cdiv(a, b):
    """ceil(a/b) for positive divisor b."""
    return -((-a) // b)

def _align(lb, base, step):
    """Smallest value >= lb congruent to base modulo step."""
    return lb + ((base - lb) % step)
'''


def emit_linexpr(
    expr: LinExpr, rename: Optional[Mapping[str, str]] = None
) -> str:
    rename = rename or {}
    parts: List[str] = []
    for name, coeff in expr.terms():
        var = rename.get(name, name)
        if coeff == 1:
            parts.append(f"+ {var}")
        elif coeff == -1:
            parts.append(f"- {var}")
        elif coeff >= 0:
            parts.append(f"+ {coeff}*{var}")
        else:
            parts.append(f"- {-coeff}*{var}")
    if expr.constant or not parts:
        sign = "+" if expr.constant >= 0 else "-"
        parts.append(f"{sign} {abs(expr.constant)}")
    text = " ".join(parts)
    if text.startswith("+ "):
        text = text[2:]
    return f"({text})"


def emit_bound(
    bound: SymbolicBound, rename: Optional[Mapping[str, str]] = None
) -> str:
    inner = emit_linexpr(bound.expr, rename)
    if bound.divisor == 1:
        return inner
    helper = "_cdiv" if bound.is_lower else "_fdiv"
    return f"{helper}({inner}, {bound.divisor})"


def emit_lower(
    bounds: Sequence[SymbolicBound],
    rename: Optional[Mapping[str, str]] = None,
) -> str:
    pieces = [emit_bound(b, rename) for b in bounds]
    if len(pieces) == 1:
        return pieces[0]
    return f"max({', '.join(pieces)})"


def emit_upper(
    bounds: Sequence[SymbolicBound],
    rename: Optional[Mapping[str, str]] = None,
) -> str:
    pieces = [emit_bound(b, rename) for b in bounds]
    if len(pieces) == 1:
        return pieces[0]
    return f"min({', '.join(pieces)})"


def emit_constraint(
    constraint: Constraint, rename: Optional[Mapping[str, str]] = None
) -> str:
    lhs = emit_linexpr(constraint.expr, rename)
    op = "==" if constraint.is_equality else ">="
    return f"{lhs} {op} 0"


def emit_conjunct_guard(
    conjunct: Conjunct,
    rename: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """Boolean expression testing membership in a conjunct.

    Stride wildcards (``k*w == e`` with the wildcard confined to one
    equality) become modulus tests.  Returns ``None`` when the conjunct
    has wildcards that cannot be expressed this way (caller falls back to
    an ``rt.member`` closure).
    """
    prepared = conjunct
    try:
        for wildcard in conjunct.wildcards:
            prepared = _pivot_wildcard(prepared, wildcard)
    except Exception:
        return None
    terms: List[str] = []
    for constraint in prepared.constraints:
        wilds = [w for w in prepared.wildcards if constraint.coeff(w)]
        if not wilds:
            terms.append(emit_constraint(constraint, rename))
            continue
        if len(wilds) > 1 or not constraint.is_equality:
            return None
        wildcard = wilds[0]
        modulus = abs(constraint.coeff(wildcard))
        base = constraint.expr.substitute(wildcard, 0)
        if constraint.coeff(wildcard) > 0:
            base = -base
        # Only the residue class matters; canonicalize so emitted guards
        # are independent of the solver's representative.
        base = base.reduced_mod(modulus)
        terms.append(f"{emit_linexpr(base, rename)} % {modulus} == 0")
    if not terms:
        return "True"
    return " and ".join(terms)


def emit_set_guard(
    subset: IntegerSet,
    rename: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """Boolean expression for membership in a union of conjuncts."""
    if not subset.conjuncts:
        return "False"
    clauses: List[str] = []
    for conjunct in subset.conjuncts:
        clause = emit_conjunct_guard(conjunct, rename)
        if clause is None:
            return None
        clauses.append(f"({clause})")
    return " or ".join(clauses)


def emit_affine_offset(
    expr: LinExpr, rename: Optional[Mapping[str, str]] = None
) -> str:
    """A loop-var-free affine offset as source text (slice arithmetic)."""
    return emit_linexpr(expr, rename)


def emit_slice(
    lower_name: str, upper_name: str, offset: str, stride: int
) -> str:
    """One slice-index text for an array dim swept by the kernel loop.

    ``lower_name``/``upper_name`` are the (inclusive) loop-bound variables
    of the kernel launch; ``offset`` is the var-free part of the subscript
    minus the array's allocation lower bound.  The emitted slice
    ``lo+off : hi+off+1 : stride`` visits exactly the elements the scalar
    per-point loop would have touched, in the same order.
    """
    start = f"{lower_name} + {offset}"
    stop = f"{upper_name} + {offset} + 1"
    if stride > 1:
        return f"{start}:{stop}:{stride}"
    return f"{start}:{stop}"


def emit_arange(
    lower_name: str, upper_name: str, stride: int
) -> str:
    """The loop variable itself as a float64 vector (exact below 2**53)."""
    step = f", {stride}" if stride > 1 else ""
    return (
        f"np.arange({lower_name}, {upper_name} + 1{step}, "
        f"dtype=np.float64)"
    )


class SourceWriter:
    """Indented Python source accumulator."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        if text:
            self.lines.append("    " * self.depth + text)
        else:
            self.lines.append("")

    def push(self) -> None:
        self.depth += 1

    def pop(self) -> None:
        self.depth -= 1

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"
