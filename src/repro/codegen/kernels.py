"""Kernel vectorization: lowering innermost affine loop pieces to numpy
strided-slice statements.

This is the compute plane's analogue of the PR 2 section-descriptor data
plane.  :func:`try_emit_kernel_piece` is called by the SPMD emitter for
each disjoint loop piece when ``CompilerOptions(compute="kernels")``.  A
piece qualifies when

* the loop body is straight-line assignments with no communication
  events anchored inside it,
* the piece's iteration set reduces to a single stride-interval for the
  loop variable (stride equalities become the slice step; secondary
  stride guards and piece constraints not involving the loop variable
  hoist to a once-per-launch guard), and
* each statement's membership set is a single conjunct whose loop-var
  constraints fold into interval bounds — exactly the §5 membership
  guards, evaluated symbolically at compile time instead of per point.

Qualifying statements become one numpy strided-slice statement per
launch; recognized reductions lower to ``np.max``/``np.min``/``np.sum``
partials feeding the existing post-nest allreduce.  Statements that fail
qualification (membership guards that do not fold, non-unit subscript
coefficients, §3.4 buffer-access checks, unsupported operators) fall
back *per statement* to the scalar per-point loop.  Mixing vectorized
and scalar statements of one body is classic loop distribution, so it is
only done when the pairwise dependence check below proves the
reordering safe; otherwise the whole piece falls back to the scalar
nest.  Work accounting charges a vectorized statement once per kernel
launch (``weight * trip_count``) so the LogGP compute totals — and the
Figure 7 speedup shapes — are identical under both compute planes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isets import Conjunct, Constraint, IntegerSet, LinExpr, Space
from ..isets.ops import _pivot_wildcard
from ..lang import ast as L
from ..lang.affine import to_affine
from ..lang.errors import NonAffineSubscriptError
from .pyexpr import (
    emit_arange,
    emit_conjunct_guard,
    emit_constraint,
    emit_linexpr,
    emit_lower,
    emit_slice,
    emit_upper,
)

#: Intrinsics with an elementwise numpy equivalent that is bit-identical
#: (or ulp-identical, for the transcendentals) to the scalar-plane call.
_VEC_CALLS = {"abs": "np.abs", "sqrt": "np.sqrt", "exp": "np.exp"}
_VEC_CALLS_2 = {"mod": "np.mod", "max": "np.maximum", "min": "np.minimum"}
_VEC_BINOPS = {"+", "-", "*", "/"}


class _Disqualify(Exception):
    """A statement (or piece) cannot be vectorized; carries the reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class _Ref:
    """One array reference with affine subscripts (``None`` = unknown)."""

    array: str
    subs: Optional[Tuple[LinExpr, ...]]
    is_write: bool


@dataclass
class _StmtPlan:
    stmt: L.Assign
    status: str  # 'vectorized' | 'scalar' | 'empty'
    reason: str = ""
    guard_text: str = ""  # hoisted launch-time membership guard
    extra_lowers: List[str] = field(default_factory=list)
    extra_uppers: List[str] = field(default_factory=list)
    lo_name: str = ""
    hi_name: str = ""
    line: str = ""
    work_line: str = ""


# ---------------------------------------------------------------------------
# Expression walks
# ---------------------------------------------------------------------------

def _mentions_var(expr: L.Expr, var: str) -> bool:
    if isinstance(expr, L.Name):
        return expr.ident == var
    if isinstance(expr, L.ArrayRef):
        return any(_mentions_var(s, var) for s in expr.subscripts)
    if isinstance(expr, L.BinOp):
        return _mentions_var(expr.left, var) or _mentions_var(expr.right, var)
    if isinstance(expr, L.UnOp):
        return _mentions_var(expr.operand, var)
    if isinstance(expr, L.Call):
        return any(_mentions_var(a, var) for a in expr.args)
    return False


def _scalar_names(expr: L.Expr, out: set) -> None:
    if isinstance(expr, L.Name):
        out.add(expr.ident)
    elif isinstance(expr, L.ArrayRef):
        for sub in expr.subscripts:
            _scalar_names(sub, out)
    elif isinstance(expr, L.BinOp):
        _scalar_names(expr.left, out)
        _scalar_names(expr.right, out)
    elif isinstance(expr, L.UnOp):
        _scalar_names(expr.operand, out)
    elif isinstance(expr, L.Call):
        for arg in expr.args:
            _scalar_names(arg, out)


def _make_ref(ref: L.ArrayRef, is_write: bool) -> _Ref:
    try:
        subs = tuple(to_affine(s) for s in ref.subscripts)
    except NonAffineSubscriptError:
        subs = None
    return _Ref(ref.array, subs, is_write)


def _collect_refs(expr: L.Expr, out: List[_Ref]) -> None:
    if isinstance(expr, L.ArrayRef):
        out.append(_make_ref(expr, is_write=False))
        for sub in expr.subscripts:
            _collect_refs(sub, out)
    elif isinstance(expr, L.BinOp):
        _collect_refs(expr.left, out)
        _collect_refs(expr.right, out)
    elif isinstance(expr, L.UnOp):
        _collect_refs(expr.operand, out)
    elif isinstance(expr, L.Call):
        for arg in expr.args:
            _collect_refs(arg, out)


# ---------------------------------------------------------------------------
# Dependence analysis
# ---------------------------------------------------------------------------

def _pair_safe(
    a: _Ref, b: _Ref, var: str, stride: int, same_stmt: bool
) -> Tuple[bool, str]:
    """Is it safe to run all instances of ``a`` before all of ``b``?

    ``a`` is the earlier access in scalar program order (for
    ``same_stmt`` the statement's write, with ``b`` one of its reads —
    numpy evaluates the full RHS before assigning, which reorders the
    read of iteration *j* before writes of iterations *i < j*).  A
    conflict needs both refs to hit the same element with an iteration
    distance ``d = i_a - i_b`` that is a multiple of the loop stride;
    vectorization is unsafe exactly when such a distance exists with
    ``d < 0`` (same statement: a read observing an earlier iteration's
    write) or ``d > 0`` (cross statement: the later statement's instance
    preceding an earlier statement's instance in scalar order).
    """
    if a.subs is None or b.subs is None:
        return False, f"non-affine subscript on array {a.array}"
    if len(a.subs) != len(b.subs):
        return False, f"rank mismatch on array {a.array}"
    dists: List[int] = []
    for sa, sb in zip(a.subs, b.subs):
        ca, cb = sa.coeff(var), sb.coeff(var)
        if ca == 0 and cb == 0:
            diff = sb - sa
            if diff.is_constant() and diff.constant != 0:
                return True, ""  # provably disjoint in this dim
            # Equal, or symbolically unknown: no distance constraint.
            continue
        if ca != cb:
            return False, (
                f"mismatched loop-var subscript structure on {a.array}"
            )
        diff = sb - sa
        if not diff.is_constant():
            return False, (
                f"non-constant subscript difference on {a.array}"
            )
        if diff.constant % ca != 0:
            return True, ""  # fractional iteration distance: no conflict
        dists.append(diff.constant // ca)
    if len(set(dists)) > 1:
        return True, ""  # inconsistent distances across dims: no conflict
    if not dists:
        return False, f"loop-invariant conflict on array {a.array}"
    dist = dists[0]
    if dist % stride != 0:
        return True, ""  # off the iteration lattice (e.g. red-black)
    if same_stmt:
        ok = dist >= 0
    else:
        ok = dist <= 0
    if ok:
        return True, ""
    return False, (
        f"loop-carried dependence on {a.array} (distance {dist})"
    )


# ---------------------------------------------------------------------------
# Membership-guard folding
# ---------------------------------------------------------------------------

def _fold_statement_guard(be, cp, var, piece_conjunct, prefix_vars):
    """Fold a statement's membership set into launch guards and bounds.

    Returns ``(guard_terms, extra_lowers, extra_uppers)`` — all texts
    free of ``var`` except the extra bounds, which tighten the kernel's
    slice interval — or ``None`` when the set is empty (the statement
    never executes in this piece).  Raises :class:`_Disqualify` when the
    set does not fold (disjunctions, equalities pinning the loop var,
    stride residues on the loop var, unpivotable wildcards).
    """
    if getattr(be, "_skip_guard", None) is cp:
        return [], [], []
    if cp.replicated or not cp.iter_dims:
        return [], [], []
    iters = cp.local_iterations
    restrict = getattr(be, "_section_restrict", None)
    if restrict is not None:
        iters = iters.intersect(restrict)
    simplified = iters.simplify()
    if not simplified.conjuncts:
        return None
    # The kernel launch only covers the current piece, so membership may
    # be decided piece-wise.  A membership set covering the whole piece
    # (the common case: the loop's active set *is* this statement's) and
    # a disjunctive union (cyclic(k) block structure) both reduce against
    # the piece exactly; the per-point §5 guard disappears from the
    # launch entirely.
    piece_set = None
    if simplified.space.in_dims == tuple(prefix_vars):
        piece_set = IntegerSet(Space(tuple(prefix_vars)), [piece_conjunct])
        try:
            if piece_set.is_subset(simplified):
                return [], [], []
        except Exception:
            piece_set = None
    if len(simplified.conjuncts) > 1:
        narrowed = None
        if piece_set is not None:
            try:
                narrowed = simplified.intersect(piece_set).simplify()
            except Exception:
                narrowed = None
        if narrowed is None or len(narrowed.conjuncts) > 1:
            raise _Disqualify("disjunctive membership set")
        if not narrowed.conjuncts:
            return None
        simplified = narrowed
    conjunct = simplified.conjuncts[0]
    prepared = conjunct
    try:
        for wildcard in conjunct.wildcards:
            prepared = _pivot_wildcard(prepared, wildcard)
    except Exception:
        raise _Disqualify("membership wildcards not in stride form")
    guard_terms: List[str] = []
    extra_lowers: List[str] = []
    extra_uppers: List[str] = []
    for constraint in prepared.constraints:
        wilds = [w for w in prepared.wildcards if constraint.coeff(w)]
        if wilds:
            if len(wilds) > 1 or not constraint.is_equality:
                raise _Disqualify("membership wildcards not in stride form")
            wildcard = wilds[0]
            modulus = abs(constraint.coeff(wildcard))
            base = constraint.expr.substitute(wildcard, 0)
            if constraint.coeff(wildcard) > 0:
                base = -base
            if base.coeff(var):
                raise _Disqualify("stride residue on the loop var")
            # Canonical residue representative — keeps emission independent
            # of the solver's congruent form (see loopgen._detect_strides).
            base = base.reduced_mod(modulus)
            guard_terms.append(
                f"{emit_linexpr(base, be.rename)} % {modulus} == 0"
            )
            continue
        coeff = constraint.expr.coeff(var)
        if coeff == 0:
            guard_terms.append(emit_constraint(constraint, be.rename))
        elif constraint.is_equality:
            raise _Disqualify("equality pins the loop var")
        else:
            rest = constraint.expr.substitute(var, 0)
            if coeff > 0:
                # coeff*var + rest >= 0  =>  var >= ceil(-rest / coeff)
                text = emit_linexpr(-rest, be.rename)
                if coeff != 1:
                    text = f"_cdiv({text}, {coeff})"
                extra_lowers.append(text)
            else:
                # coeff*var + rest >= 0  =>  var <= floor(rest / -coeff)
                text = emit_linexpr(rest, be.rename)
                if coeff != -1:
                    text = f"_fdiv({text}, {-coeff})"
                extra_uppers.append(text)
    return guard_terms, extra_lowers, extra_uppers


# ---------------------------------------------------------------------------
# Vector expression emission
# ---------------------------------------------------------------------------

class _VecBuilder:
    """Builds the numpy text of one statement's slice expressions."""

    def __init__(self, be, var: str, stride: int, lo: str, hi: str):
        self.be = be
        self.var = var
        self.stride = stride
        self.lo = lo
        self.hi = hi

    def slice_ref(self, ref: L.ArrayRef) -> str:
        lbs = self.be.emitter.array_lbounds(ref.array)
        try:
            subs = [to_affine(s) for s in ref.subscripts]
        except NonAffineSubscriptError as exc:
            raise _Disqualify(f"non-affine subscript: {exc}")
        parts = []
        var_dims = 0
        for sub, lb in zip(subs, lbs):
            coeff = sub.coeff(self.var)
            if coeff == 0:
                parts.append(
                    f"({emit_linexpr(sub - lb, self.be.rename)})"
                )
            elif coeff == 1:
                var_dims += 1
                offset = emit_linexpr(
                    sub.substitute(self.var, 0) - lb, self.be.rename
                )
                parts.append(
                    emit_slice(self.lo, self.hi, offset, self.stride)
                )
            else:
                raise _Disqualify(
                    f"non-unit subscript coefficient on {ref.array}"
                )
        if var_dims > 1:
            raise _Disqualify(f"loop var in several dims of {ref.array}")
        return f"{ref.array}[{', '.join(parts)}]", var_dims == 1

    def vec(self, expr: L.Expr) -> Tuple[str, bool]:
        """(text, is_vector) for one RHS subtree."""
        if not _mentions_var(expr, self.var):
            # Loop-invariant subtree: reuse the scalar plane's emission
            # verbatim so values are computed identically.
            return self.be._expr(expr), False
        if isinstance(expr, L.Name):  # the loop variable as a value
            return emit_arange(self.lo, self.hi, self.stride), True
        if isinstance(expr, L.ArrayRef):
            text, is_vec = self.slice_ref(expr)
            return text, is_vec
        if isinstance(expr, L.BinOp):
            if expr.op not in _VEC_BINOPS:
                raise _Disqualify(f"operator {expr.op!r} not vectorizable")
            left, lv = self.vec(expr.left)
            right, rv = self.vec(expr.right)
            return f"({left} {expr.op} {right})", lv or rv
        if isinstance(expr, L.UnOp):
            if expr.op != "-":
                raise _Disqualify(f"operator {expr.op!r} not vectorizable")
            text, is_vec = self.vec(expr.operand)
            return f"(-{text})", is_vec
        if isinstance(expr, L.Call):
            if expr.func in _VEC_CALLS and len(expr.args) == 1:
                func = _VEC_CALLS[expr.func]
            elif expr.func in _VEC_CALLS_2 and len(expr.args) == 2:
                func = _VEC_CALLS_2[expr.func]
            else:
                raise _Disqualify(
                    f"call {expr.func}/{len(expr.args)} not vectorizable"
                )
            pieces = [self.vec(a) for a in expr.args]
            args = ", ".join(text for text, _ in pieces)
            return f"{func}({args})", any(v for _, v in pieces)
        raise _Disqualify(f"cannot vectorize {expr!r}")


# ---------------------------------------------------------------------------
# Per-statement planning
# ---------------------------------------------------------------------------

def _count_text(lo: str, hi: str, stride: int) -> str:
    if stride == 1:
        return f"({hi} - {lo} + 1)"
    return f"(({hi} - {lo}) // {stride} + 1)"


def _plan_statement(
    be, stmt, cp, var, stride, kid, sid, lo_name, hi_name, piece,
    prefix_vars,
):
    from .spmd import _weight

    checks = be._buffer_checks_for(stmt)
    if checks:
        raise _Disqualify("buffer-access checks (§3.4 direct mode)")
    folded = _fold_statement_guard(be, cp, var, piece, prefix_vars)
    if folded is None:
        return _StmtPlan(stmt, "empty", "empty membership set")
    guard_terms, extra_lowers, extra_uppers = folded
    if extra_lowers or extra_uppers:
        slo, shi = f"_kl{kid}_{sid}", f"_ku{kid}_{sid}"
    else:
        slo, shi = lo_name, hi_name
    builder = _VecBuilder(be, var, stride, slo, shi)
    weight = max(1, _weight(stmt.rhs))

    if isinstance(stmt.lhs, L.ArrayRef):
        target, has_var = builder.slice_ref(stmt.lhs)
        if not has_var:
            raise _Disqualify("loop var absent from the write subscripts")
        value, _ = builder.vec(stmt.rhs)
        line = f"{target} = {value}"
    else:
        line = _plan_reduction(be, stmt, cp, builder)

    # Same-statement dependence: numpy reads the whole RHS first.
    if isinstance(stmt.lhs, L.ArrayRef):
        write = _make_ref(stmt.lhs, is_write=True)
        reads: List[_Ref] = []
        _collect_refs(stmt.rhs, reads)
        for sub in stmt.lhs.subscripts:
            _collect_refs(sub, reads)
        for read in reads:
            if read.array != write.array:
                continue
            ok, why = _pair_safe(write, read, var, stride, same_stmt=True)
            if not ok:
                raise _Disqualify(why)

    work_line = (
        f"{be._work_var}[2] += {weight} * {_count_text(slo, shi, stride)}"
    )
    guard_text = " and ".join(guard_terms)
    return _StmtPlan(
        stmt, "vectorized", "",
        guard_text=guard_text,
        extra_lowers=extra_lowers,
        extra_uppers=extra_uppers,
        lo_name=slo,
        hi_name=shi,
        line=line,
        work_line=work_line,
    )


def _plan_reduction(be, stmt, cp, builder) -> str:
    """Lower ``s = op(s, e)`` / ``s = s ± e`` to a numpy partial."""
    target = stmt.lhs.ident
    op = cp.reduction
    if op is None:
        raise _Disqualify("scalar assignment without a recognized reduction")
    rhs = stmt.rhs

    def is_target(expr: L.Expr) -> bool:
        return isinstance(expr, L.Name) and expr.ident == target

    if op in ("max", "min"):
        if (
            not isinstance(rhs, L.Call)
            or rhs.func != op
            or len(rhs.args) != 2
        ):
            raise _Disqualify(f"unrecognized {op} reduction shape")
        if is_target(rhs.args[0]):
            vec_expr = rhs.args[1]
        elif is_target(rhs.args[1]):
            vec_expr = rhs.args[0]
        else:
            raise _Disqualify(f"unrecognized {op} reduction shape")
        text, is_vec = builder.vec(vec_expr)
        if not is_vec:
            raise _Disqualify("loop-invariant reduction operand")
        red = "np.max" if op == "max" else "np.min"
        return f"S[{target!r}] = {op}(S[{target!r}], float({red}({text})))"
    if op == "+":
        if not isinstance(rhs, L.BinOp) or rhs.op not in ("+", "-"):
            raise _Disqualify("unrecognized sum reduction shape")
        if rhs.op == "+" and is_target(rhs.left):
            vec_expr, sign = rhs.right, "+"
        elif rhs.op == "+" and is_target(rhs.right):
            vec_expr, sign = rhs.left, "+"
        elif rhs.op == "-" and is_target(rhs.left):
            vec_expr, sign = rhs.right, "-"
        else:
            raise _Disqualify("unrecognized sum reduction shape")
        text, is_vec = builder.vec(vec_expr)
        if not is_vec:
            raise _Disqualify("loop-invariant reduction operand")
        return (
            f"S[{target!r}] = S[{target!r}] {sign} float(np.sum({text}))"
        )
    raise _Disqualify(f"reduction {op!r} not vectorizable")


# ---------------------------------------------------------------------------
# Piece entry point
# ---------------------------------------------------------------------------

def try_emit_kernel_piece(be, do, conjunct, prefix_vars, loop_path) -> bool:
    """Emit one disjoint loop piece as numpy kernels; False = use the
    scalar nest.  ``be`` is the :class:`~repro.codegen.spmd._BodyEmitter`
    positioned at the piece (rename map, section restriction, and
    skip-guard state all active)."""
    from .spmd import _var_bounds

    emitter = be.emitter
    var = do.var
    report = emitter.kernel_report

    def bail(reason: str) -> bool:
        report.append((do.stmt_id, var, "piece-scalar", reason))
        return False

    stmts = list(do.body)
    if not stmts or not all(isinstance(s, L.Assign) for s in stmts):
        return bail("body is not straight-line assignments")
    if be._events_under(do):
        return bail("communication events inside the nest")
    cps = []
    for stmt in stmts:
        cp = be.analysis.cps.get(stmt.stmt_id)
        if cp is None:
            return bail("statement without CP info")
        cps.append(cp)

    lowers, uppers, stride, base, mods = _var_bounds(
        conjunct, var, prefix_vars
    )
    if not lowers or not uppers:
        return bail("unbounded piece")
    launch_terms: List[str] = []
    for expr, modulus in mods:
        if expr.coeff(var):
            return bail("secondary stride guard involves the loop var")
        launch_terms.append(
            f"({emit_linexpr(expr, be.rename)}) % {modulus} == 0"
        )

    # Piece-level guard constraints (same split as the scalar path).
    guard_constraints = [
        c for c in conjunct.constraints if c.coeff(var) == 0
    ]
    var_wildcards = {
        w
        for w in conjunct.wildcards
        if any(c.coeff(w) for c in conjunct.constraints if c.coeff(var))
    }
    shared = [
        w
        for w in conjunct.wildcards
        if w in var_wildcards
        and any(c.coeff(w) for c in guard_constraints)
    ]
    if shared:
        # A stride witness couples guard constraints to the loop var
        # (red-black: ``0 <= a`` and ``n >= 2a + 3`` with ``i = 2a + 2``).
        # The launch we emit replaces those with the projected bounds +
        # stride + mods; rebuild that launch set and require it to sit
        # inside the piece — then the coupled constraints are already
        # enforced by the bounds and can be dropped from the guard.
        kept_guards = [
            c
            for c in guard_constraints
            if not any(c.coeff(w) for w in shared)
        ]
        launch_constraints = list(kept_guards)
        launch_wildcards = [
            w
            for w in conjunct.wildcards
            if w not in shared and any(c.coeff(w) for c in kept_guards)
        ]
        for b in lowers:
            launch_constraints.append(
                Constraint.geq(LinExpr.var(var) * b.divisor - b.expr)
            )
        for b in uppers:
            launch_constraints.append(
                Constraint.geq(b.expr - LinExpr.var(var) * b.divisor)
            )
        fresh = 0
        if stride > 1 and base is not None:
            witness = f"k$launch{fresh}"
            fresh += 1
            launch_wildcards.append(witness)
            launch_constraints.append(
                Constraint.eq(
                    LinExpr.var(var) - base - LinExpr.var(witness) * stride
                )
            )
        for expr, modulus in mods:
            witness = f"k$launch{fresh}"
            fresh += 1
            launch_wildcards.append(witness)
            launch_constraints.append(
                Constraint.eq(expr - LinExpr.var(witness) * modulus)
            )
        space = Space(tuple(prefix_vars))
        try:
            exact = IntegerSet(
                space,
                [Conjunct(launch_constraints, tuple(launch_wildcards))],
            ).is_subset(IntegerSet(space, [conjunct]))
        except Exception:
            exact = False
        if not exact:
            return bail("wildcard couples the piece guard to the loop var")
        guard_constraints = kept_guards
    if guard_constraints:
        guard_wildcards = [
            w
            for w in conjunct.wildcards
            if any(c.coeff(w) for c in guard_constraints)
        ]
        guard_conjunct = Conjunct(guard_constraints, guard_wildcards)
        guard_text = emit_conjunct_guard(guard_conjunct, be.rename)
        if guard_text is None:
            index = emitter.register_fallback(
                IntegerSet(Space(()), [guard_conjunct])
            )
            overrides = ", ".join(
                f"{name!r}: {name}"
                for name in sorted(
                    {
                        v
                        for c in guard_constraints
                        for v in c.variables()
                        if v.startswith("my_")
                    }
                )
            )
            guard_text = f"rt.member({index}, (), {{{overrides}}})"
        if guard_text != "True":
            launch_terms.append(f"({guard_text})")

    # Scalars assigned in the body must not be read by other statements
    # (per-point interleaving would be observable).
    assigned_scalars = {
        s.lhs.ident for s in stmts if isinstance(s.lhs, L.Name)
    }
    if assigned_scalars:
        for stmt in stmts:
            allowed = (
                stmt.lhs.ident if isinstance(stmt.lhs, L.Name) else None
            )
            names: set = set()
            _scalar_names(stmt.rhs, names)
            clashing = (assigned_scalars & names) - {allowed}
            if clashing:
                return bail(
                    f"scalar(s) {sorted(clashing)} assigned and read "
                    f"in the nest"
                )

    # Cross-statement dependences: emitting statement k's full launch
    # before statement k+1's (vectorized or distributed scalar loop) is
    # a reordering that every same-array pair must tolerate.
    refs_by_stmt: List[List[_Ref]] = []
    for stmt in stmts:
        refs: List[_Ref] = []
        if isinstance(stmt.lhs, L.ArrayRef):
            refs.append(_make_ref(stmt.lhs, is_write=True))
            for sub in stmt.lhs.subscripts:
                _collect_refs(sub, refs)
        _collect_refs(stmt.rhs, refs)
        refs_by_stmt.append(refs)
    for i in range(len(stmts)):
        for j in range(i + 1, len(stmts)):
            for a in refs_by_stmt[i]:
                for b in refs_by_stmt[j]:
                    if a.array != b.array:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    ok, why = _pair_safe(
                        a, b, var, stride, same_stmt=False
                    )
                    if not ok:
                        return bail(why)

    kid = next(emitter._kernel_counter)
    lo_name, hi_name = f"_kl{kid}", f"_ku{kid}"
    plans: List[_StmtPlan] = []
    any_vec = False
    for sid, (stmt, cp) in enumerate(zip(stmts, cps)):
        try:
            plan = _plan_statement(
                be, stmt, cp, var, stride, kid, sid, lo_name, hi_name,
                conjunct, prefix_vars,
            )
            any_vec = any_vec or plan.status == "vectorized"
        except _Disqualify as disq:
            plan = _StmtPlan(stmt, "scalar", disq.reason)
        plans.append(plan)
    for plan in plans:
        report.append(
            (plan.stmt.stmt_id, var, plan.status, plan.reason)
        )
    if not any_vec:
        report.append((do.stmt_id, var, "piece-scalar", "no statement qualified"))
        return False

    # ----------------------------------------------------------- emission
    w = be.w
    summary = "+".join(p.status for p in plans)
    w.line(f"# kernel piece over {var} [{summary}]")
    opened = 0
    if launch_terms:
        w.line(f"if {' and '.join(launch_terms)}:")
        w.push()
        opened += 1
    lower = emit_lower(lowers, be.rename)
    upper = emit_upper(uppers, be.rename)
    if stride > 1:
        base_text = emit_linexpr(base, be.rename)
        w.line(f"{lo_name} = _align({lower}, {base_text}, {stride})")
    else:
        w.line(f"{lo_name} = {lower}")
    w.line(f"{hi_name} = {upper}")
    w.line(f"if {lo_name} <= {hi_name}:")
    w.push()
    opened += 1
    step_text = f", {stride}" if stride > 1 else ""
    for plan in plans:
        if plan.status == "empty":
            continue
        if plan.status == "scalar":
            # Per-statement fallback: the statement keeps its exact
            # membership guard inside its own (distributed) scalar loop.
            w.line(
                f"for {var} in range({lo_name}, {hi_name} + 1"
                f"{step_text}):"
            )
            w.push()
            be.open_loops.append(var)
            be.rename[f"{var}_cur"] = var
            be._emit_assign(plan.stmt, loop_path + [do])
            be.rename.pop(f"{var}_cur", None)
            be.open_loops.pop()
            w.pop()
            continue
        inner = 0
        if plan.guard_text:
            w.line(f"if {plan.guard_text}:")
            w.push()
            inner += 1
        if plan.extra_lowers or plan.extra_uppers:
            slo, shi = plan.lo_name, plan.hi_name
            if plan.extra_lowers:
                extras = ", ".join(plan.extra_lowers)
                w.line(f"{slo} = max({lo_name}, {extras})")
                if stride > 1:
                    w.line(f"{slo} = _align({slo}, {lo_name}, {stride})")
            else:
                w.line(f"{slo} = {lo_name}")
            if plan.extra_uppers:
                extras = ", ".join(plan.extra_uppers)
                w.line(f"{shi} = min({hi_name}, {extras})")
            else:
                w.line(f"{shi} = {hi_name}")
            w.line(f"if {slo} <= {shi}:")
            w.push()
            inner += 1
        w.line(plan.line)
        w.line(plan.work_line)
        for _ in range(inner):
            w.pop()
    for _ in range(opened):
        w.pop()
    return True
