"""SPMD code generation from analysis results."""

from .pyexpr import (
    PRELUDE,
    SourceWriter,
    emit_conjunct_guard,
    emit_linexpr,
    emit_set_guard,
)
from .spmd import AnalyzedEvent, CompiledModule, ProcedureAnalysis, SpmdEmitter

__all__ = [
    "AnalyzedEvent",
    "CompiledModule",
    "PRELUDE",
    "ProcedureAnalysis",
    "SourceWriter",
    "SpmdEmitter",
    "emit_conjunct_guard",
    "emit_linexpr",
    "emit_set_guard",
]
