"""SPMD node-program generation.

Turns the analysis results (CP maps, communication sets, split sets, active
VP sets) into an executable Python node program against the
:class:`~repro.runtime.machine.NodeRuntime` API.  The structure follows the
paper:

* partitioned loop bounds come from ``CPMap({m})`` projections (§3.1);
* statements whose iteration sets differ from the emitted nest get exact
  membership guards (hierarchical MMCodeGen usage, §5);
* communication events emit pack / send / recv / unpack code driven by
  ``SendCommMap`` / ``RecvCommMap`` (§3.2), wrapped in physical-partner
  loops and virtual-processor loops per Figure 6;
* block-distributed VP dims need no VP loops (one active VP per processor,
  §4.1); cyclic dims get VP loops restricted to the active sets (Figure 5);
* loop splitting emits the Figure 4(b) schedule;
* recognized reductions accumulate locally and allreduce right after the
  outermost partitioned loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..isets import (
    Conjunct,
    Constraint,
    IntegerMap,
    IntegerSet,
    LinExpr,
    Space,
)
from ..isets.bounds import extract_bounds, inequality_projection
from ..isets.errors import CodegenError
from ..isets.loopgen import (
    GuardNode,
    LoopNode,
    StmtNode,
    generate_loops,
)
from ..hpf.layout import (
    DataMapping,
    DimOwnership,
    Layout,
    VP_BLOCK,
    VP_CYCLIC,
    VP_CYCLIC_K,
)
from ..hpf.procgrid import ProcessorGrid
from ..lang import ast as L
from .pyexpr import (
    PRELUDE,
    SourceWriter,
    emit_conjunct_guard,
    emit_linexpr,
    emit_lower,
    emit_set_guard,
    emit_upper,
)
from .kernels import try_emit_kernel_piece
from ..core.commsets import CommSets
from ..core.cp import CPInfo
from ..core.events import PlacedEvent
from ..core.inplace import InPlaceResult
from ..core.loopsplit import SplitSets, reference_needs_checks
from ..core.options import CompilerOptions
from ..core.vp import ActiveVPSets


@dataclass
class AnalyzedEvent:
    """Everything codegen needs for one communication event."""

    placed: PlacedEvent
    sets: CommSets
    active_vp: Optional[ActiveVPSets]
    inplace_send: Optional[InPlaceResult]
    inplace_recv: Optional[InPlaceResult]
    tag: str = ""
    #: outer-loop iterations in which myid participates (widens bounds).
    outer_iters: Optional[IntegerSet] = None


@dataclass
class ProcedureAnalysis:
    name: str
    cps: Dict[int, CPInfo]  # stmt_id -> CPInfo
    events: List[AnalyzedEvent]
    splits: Dict[int, SplitSets]  # stmt_id -> split sets (when enabled)


@dataclass
class CompiledModule:
    source: str
    fallback_sets: List[IntegerSet]
    runtime_inplace: List[Tuple[str, object]]  # (flag name, InPlaceResult)
    #: per-(statement, loop-piece) kernel-qualification outcomes:
    #: ``(stmt_id, loop_var, status, reason)`` with status one of
    #: 'vectorized' | 'scalar' | 'empty' | 'piece-scalar'.  Travels with
    #: the persistent compile cache so warm compiles keep the report.
    kernel_report: List[Tuple[int, str, str, str]] = field(
        default_factory=list
    )


def _weight(expr: L.Expr) -> int:
    """Abstract per-execution cost of an expression (operation count).

    The scalar plane charges this per executed point
    (``_w0[0] += weight``); the kernel plane charges it once per kernel
    launch as ``_w0[2] += weight * trip_count``, so accounting is O(1)
    per launch while the compute-unit totals (and the LogGP phase
    tables that replay them) are identical under both planes."""
    if isinstance(expr, L.BinOp):
        return 1 + _weight(expr.left) + _weight(expr.right)
    if isinstance(expr, L.UnOp):
        return 1 + _weight(expr.operand)
    if isinstance(expr, L.Call):
        return 2 + sum(_weight(a) for a in expr.args)
    if isinstance(expr, L.ArrayRef):
        return 1 + sum(_weight(s) for s in expr.subscripts)
    return 0


class SpmdEmitter:
    """Emits one Python module for a whole program."""

    def __init__(
        self,
        program: L.Program,
        mapping: DataMapping,
        analyses: Dict[str, ProcedureAnalysis],
        options: CompilerOptions,
    ):
        self.program = program
        self.mapping = mapping
        self.analyses = analyses
        self.options = options
        self.fallback_sets: List[IntegerSet] = []
        self.runtime_inplace: List[Tuple[str, object]] = []
        self._work_counter = itertools.count()
        self._kernel_counter = itertools.count()
        self.kernel_report: List[Tuple[int, str, str, str]] = []
        self._listing: List[str] = []

    # ------------------------------------------------------------------ module

    def emit_module(self) -> CompiledModule:
        writer = SourceWriter()
        writer.line('"""Generated SPMD node program (dHPF reproduction)."""')
        writer.line("import numpy as np")
        writer.line()
        for line in PRELUDE.splitlines():
            writer.line(line)
        writer.line()
        for procedure in self.program.procedures:
            self._emit_procedure(writer, procedure)
            writer.line()
        writer.line("def node_main(rt):")
        writer.push()
        writer.line(f"proc_{self.program.main.name}(rt)")
        writer.pop()
        return CompiledModule(
            writer.text(), self.fallback_sets, self.runtime_inplace,
            self.kernel_report,
        )

    # --------------------------------------------------------------- procedures

    def _emit_procedure(self, writer: SourceWriter, procedure: L.Procedure):
        analysis = self.analyses[procedure.name]
        writer.line(f"def proc_{procedure.name}(rt):")
        writer.push()
        writer.line("env = rt.env")
        writer.line("S = rt.scalars")
        for name in self._symbols_needed():
            writer.line(f"{name} = env[{name!r}]")
        for array in self.program.arrays:
            writer.line(f"{array.name} = rt.arrays[{array.name!r}]")
        body_writer = _BodyEmitter(self, writer, analysis)
        body_writer.emit_body(procedure.body, [])
        writer.line("return None")
        writer.pop()

    def _symbols_needed(self) -> List[str]:
        names = ["nprocs"]
        names += [p.name for p in self.program.parameters]
        for binding in self.mapping.runtime_bindings():
            if binding.symbol not in names:
                names.append(binding.symbol)
        return names

    # ----------------------------------------------------------------- helpers

    def register_fallback(self, subset: IntegerSet) -> int:
        self.fallback_sets.append(subset)
        return len(self.fallback_sets) - 1

    def array_lbounds(self, name: str) -> Tuple[int, ...]:
        decl = self.program.array(name)
        from ..lang.affine import to_affine

        lbs = []
        for low, _high in decl.extents:
            expr = to_affine(low)
            lbs.append(expr)
        return tuple(lbs)


class _BodyEmitter:
    """Emits statements of one procedure body."""

    def __init__(
        self,
        emitter: SpmdEmitter,
        writer: SourceWriter,
        analysis: ProcedureAnalysis,
    ):
        self.emitter = emitter
        self.w = writer
        self.analysis = analysis
        self.options = emitter.options
        self.mapping = emitter.mapping
        # active rename: *_cur comm symbols -> live loop variables
        self.rename: Dict[str, str] = {}
        # stack of loop vars currently open
        self.open_loops: List[str] = []
        # grid dims whose VP loops are currently open
        self._open_vp_grid_dims: set = set()
        # reductions pending per Do node id
        self._work_var = f"_w{next(emitter._work_counter)}"

    # ------------------------------------------------------------- body walk

    def emit_body(self, stmts: Sequence[L.Stmt], loop_path: List[L.Do]):
        for stmt in stmts:
            split_plan = None
            if isinstance(stmt, L.Do) and self.options.loop_split:
                split_plan = self._split_plan_for(stmt)
            self._emit_events_for(
                stmt, "before",
                skip=split_plan[0] if split_plan else None,
            )
            if split_plan is not None:
                self._emit_split_schedule(stmt, loop_path, split_plan)
            elif isinstance(stmt, L.Assign):
                self._emit_assign(stmt, loop_path)
            elif isinstance(stmt, L.Do):
                self._emit_do(stmt, loop_path)
            elif isinstance(stmt, L.If):
                self._emit_if(stmt, loop_path)
            elif isinstance(stmt, L.CallStmt):
                self.w.line(f"proc_{stmt.name}(rt)")
            else:
                raise CodegenError(f"cannot emit {stmt!r}")
            self._emit_events_for(stmt, "after")

    def _split_plan_for(self, do: L.Do):
        """Loop splitting applies when exactly one 'before' event is
        anchored at this loop, the statement group's Figure 4 sections are
        available, no VP loops are involved, and there are no non-local
        writes (Figure 4(b)'s read-overlap variant)."""
        anchored = [
            a
            for a in self.analysis.events
            if a.placed.anchor is do and a.placed.when == "before"
        ]
        if len(anchored) != 1 or self._events_under(do):
            return None
        event = anchored[0]
        cps = self._contexts_under(do)
        if not cps or self._vp_dims_for(cps):
            return None
        if any(cp.reduction for cp in cps):
            return None  # reductions flush after the nest; keep it whole
        split = self.analysis.splits.get(
            cps[0].context.stmt.stmt_id
        )
        if split is None or not split.is_worthwhile():
            return None
        if not (
            split.nl_wo_iters.is_empty() and split.nl_rw_iters.is_empty()
        ):
            return None
        return event, split

    def _emit_split_schedule(self, do: L.Do, loop_path, split_plan):
        """Figure 4(b): SEND reads; execute LocalIters; RECV reads;
        execute NLROIters — overlapping the receive latency with the local
        section, and freeing the local section of buffer checks."""
        event, split = split_plan
        self.w.line(f"# --- loop splitting ({event.tag}) ---")
        self._emit_send_side(event)
        self._section_restrict = split.local_iters
        self._section_name = "local"
        self._section_split = split
        self._emit_do(do, loop_path)
        self._emit_recv_side(event)
        self._section_restrict = split.nl_ro_iters
        self._section_name = "nl_ro"
        self._emit_do(do, loop_path)
        self._section_restrict = None
        self._section_name = None
        self._section_split = None

    # ------------------------------------------------------------ statements

    def _cp_for(self, stmt: L.Assign) -> CPInfo:
        return self.analysis.cps[stmt.stmt_id]

    def _emit_assign(self, stmt: L.Assign, loop_path: List[L.Do]):
        cp = self._cp_for(stmt)
        if not cp.replicated and cp.layout is not None:
            unopened = [
                o
                for o in cp.layout.ownerships
                if o is not None
                and o.needs_vp_loops
                and o.grid_dim not in self._open_vp_grid_dims
            ]
            if unopened:
                raise CodegenError(
                    f"statement {stmt} needs VP loops that could not be "
                    f"opened (communication anchored inside every "
                    f"enclosing loop)"
                )
        iters = cp.local_iterations
        restrict = getattr(self, "_section_restrict", None)
        if restrict is not None and not cp.replicated:
            iters = iters.intersect(restrict).simplify()
        dims = cp.iter_dims
        guard = None
        if not cp.replicated and dims:
            guard = self._statement_guard(cp, iters, dims)
        if guard is not None and guard != "True":
            self.w.line(f"if {guard}:")
            self.w.push()
        self._emit_statement_body(stmt, cp)
        if guard is not None and guard != "True":
            self.w.pop()

    def _statement_guard(
        self, cp: CPInfo, iters: IntegerSet, dims: Tuple[str, ...]
    ) -> Optional[str]:
        """Exact membership guard for the open loop iteration.

        Loop bounds already enforce the union of the scope's statements;
        single-statement scopes mark the guard skippable at the Do level by
        setting ``self._skip_guard``.
        """
        if getattr(self, "_skip_guard", None) is cp:
            return None
        simplified = iters.simplify()
        guard = emit_set_guard(simplified, self.rename)
        if guard is None:
            index = self.emitter.register_fallback(simplified)
            args = ", ".join(dims)
            overrides = ", ".join(
                f"{name!r}: {name}"
                for name in simplified.parameters()
                if name.startswith("my_")
            )
            guard = f"rt.member({index}, ({args},), {{{overrides}}})"
        return guard

    def _emit_statement_body(self, stmt: L.Assign, cp: CPInfo):
        weight = max(1, _weight(stmt.rhs))
        value = self._expr(stmt.rhs)
        if isinstance(stmt.lhs, L.ArrayRef):
            target = self._array_index(stmt.lhs)
            self.w.line(f"{target} = {value}")
        else:
            self.w.line(f"S[{stmt.lhs.ident!r}] = {value}")
        self.w.line(f"{self._work_var}[0] += {weight}")
        checks = self._buffer_checks_for(stmt)
        if checks:
            self.w.line(f"{self._work_var}[1] += {checks}")

    def _buffer_checks_for(self, stmt: L.Assign) -> int:
        """Buffer-access ownership checks per execution (§3.4).

        In 'direct' buffer mode every potentially non-local reference pays
        a check, unless loop splitting proves the current section accesses
        only one side (paper: references in local iterations need no
        checks)."""
        if self.options.buffer_mode != "direct":
            return 0
        refs = [
            event_ref.reference
            for analyzed in self.analysis.events
            for event_ref in analyzed.placed.event.refs
            if event_ref.cp.context.stmt is stmt
            and not event_ref.reference.is_write
        ]
        if not refs:
            return 0
        split = getattr(self, "_section_split", None)
        section_name = getattr(self, "_section_name", None)
        if split is None or section_name is None:
            return len(refs)
        from ..core.loopsplit import reference_needs_checks

        section = (
            split.local_iters if section_name == "local"
            else split.nl_ro_iters
        )
        return sum(
            1
            for ref in refs
            if reference_needs_checks(split, ref, section)
        )

    # ------------------------------------------------------------------- loops

    def _contexts_under(self, do: L.Do) -> List[CPInfo]:
        found: List[CPInfo] = []
        for assign in L.walk_statements(do.body):
            if isinstance(assign, L.Assign):
                cp = self.analysis.cps.get(assign.stmt_id)
                if cp is not None:
                    found.append(cp)
        return found

    def _emit_do(self, do: L.Do, loop_path: List[L.Do]):
        cps = self._contexts_under(do)
        depth = len(loop_path)
        outermost = depth == 0
        if outermost:
            # Slot 0: scalar-plane work; slot 1: buffer checks; slot 2:
            # kernel-plane work (charged once per launch).
            self.w.line(f"{self._work_var} = [0, 0, 0]")
            self._emit_reduction_bases(cps)
        if not cps:
            # No assignments below (empty loop): emit the original bounds.
            self._emit_plain_do(do, loop_path)
            if outermost:
                self._flush_work()
            return

        prefix_vars = [d.var for d in loop_path] + [do.var]
        inner_events = self._events_under(do)

        # Virtual-processor loops (cyclic dims, §4.2): wrap the maximal
        # loop subtree containing no communication events.  A sequential
        # loop containing events (e.g. the Gauss pivot loop) stays outside
        # the VP loops, its bounds taken over *all* of myid's VPs.
        pending_vp = [
            o
            for o in self._vp_dims_for(cps)
            if o.grid_dim not in self._open_vp_grid_dims
        ]
        vp_dims: List[DimOwnership] = []
        if pending_vp and not inner_events:
            vp_dims = pending_vp
            busy = self._busy_union(cps, [d.var for d in loop_path])
            self._open_vp_loops(vp_dims, busy)
            self._open_vp_grid_dims.update(o.grid_dim for o in vp_dims)

        restrict = getattr(self, "_section_restrict", None)
        union: Optional[IntegerSet] = None
        for cp in cps:
            iters = cp.local_iterations
            if restrict is not None:
                iters = iters.intersect(restrict).simplify()
            projected = iters.project_onto(prefix_vars)
            union = projected if union is None else union.union(projected)
        union = union.simplify()

        # Communication events nested deeper in this loop may need myid to
        # iterate beyond its computation iterations (to send data it owns
        # or receive data it will use later); widen the loop bounds with
        # the events' active outer iterations.
        widened = False
        for analyzed in inner_events:
            outer = getattr(analyzed, "outer_iters", None)
            if outer is None:
                continue
            projected = outer.project_onto(
                [v for v in prefix_vars if v in outer.space.in_dims]
            )
            if projected.space.in_dims != tuple(prefix_vars):
                continue  # event not governed by this loop level
            strided = any(
                c.wildcards
                for s in (projected, union)
                for c in s.conjuncts
            )
            if strided:
                # Exact subset tests on strided unions can splinter badly;
                # widen unconditionally (statements keep exact guards).
                union = union.union(projected).simplify()
                widened = True
            elif not projected.is_subset(union):
                union = union.union(projected).simplify()
                widened = True

        # Loops outside still-pending VP loops must range over the union of
        # myid's virtual processors: eliminate the VP my-symbols.
        still_pending = [
            o
            for o in self._vp_dims_for(cps)
            if o.grid_dim not in self._open_vp_grid_dims
        ]
        if still_pending:
            syms = [
                self._grid_of(o).my_names[o.grid_dim] for o in still_pending
            ]
            union = _eliminate_symbols(union, syms)
            widened = True

        # Single statement and single conjunct: bounds are exact, no guard
        # (unless communication widened the loop bounds or a loop-split
        # section restriction is active).
        if (
            len(cps) == 1 and len(union.conjuncts) <= 1 and not widened
            and restrict is None
        ):
            all_dims_set = cps[0].local_iterations
            if len(all_dims_set.conjuncts) <= 1:
                self._skip_guard = cps[0]

        if len(union.conjuncts) <= 1:
            pieces = list(union.conjuncts)
        else:
            try:
                pieces = [
                    c
                    for piece in _disjoint(union)
                    for c in piece.conjuncts
                ]
            except Exception:
                # Disjointification can be inexact (wildcards in
                # inequalities).  Fall back to a single bounding loop with
                # runtime min/max bounds; statement guards stay exact.
                self._skip_guard = None
                self._emit_bounding_loop(do, union, prefix_vars, loop_path)
                if vp_dims:
                    self._close_vp_loops(vp_dims)
                    self._open_vp_grid_dims.difference_update(
                        o.grid_dim for o in vp_dims
                    )
                if outermost:
                    self._flush_work()
                    self._emit_reductions_after(do, cps)
                return
        for piece in pieces:
            self._emit_loop_piece(do, piece, prefix_vars, loop_path)
        self._skip_guard = None
        if vp_dims:
            self._close_vp_loops(vp_dims)
            self._open_vp_grid_dims.difference_update(
                o.grid_dim for o in vp_dims
            )
        if outermost:
            self._flush_work()
            self._emit_reductions_after(do, cps)

    def _events_under(self, do: L.Do) -> List[AnalyzedEvent]:
        inner_ids = set()
        for stmt in L.walk_statements(do.body):
            inner_ids.add(id(stmt))
        return [
            analyzed
            for analyzed in self.analysis.events
            if id(analyzed.placed.anchor) in inner_ids
        ]

    def _emit_reduction_bases(self, cps: List[CPInfo]):
        seen = set()
        for cp in cps:
            if cp.reduction == "+" and not cp.replicated:
                target = cp.context.stmt.lhs.ident
                if target not in seen:
                    seen.add(target)
                    self.w.line(f"rt.red_base[{target!r}] = S[{target!r}]")

    def _emit_bounding_loop(
        self,
        do: L.Do,
        union: IntegerSet,
        prefix_vars: List[str],
        loop_path: List[L.Do],
    ):
        """One loop covering a union: lb = min over pieces of max(lowers),
        ub = max over pieces of min(uppers); stride 1.  Sound because the
        statements keep exact membership guards."""
        var = do.var
        lower_pieces = []
        upper_pieces = []
        for conjunct in union.conjuncts:
            lowers, uppers, _stride, _base, _mods = _var_bounds(
                conjunct, var, prefix_vars
            )
            if not lowers or not uppers:
                raise CodegenError(f"loop {var}: unbounded union piece")
            lower_pieces.append(emit_lower(lowers, self.rename))
            upper_pieces.append(emit_upper(uppers, self.rename))
        lower = (
            lower_pieces[0]
            if len(lower_pieces) == 1
            else f"min({', '.join(lower_pieces)})"
        )
        upper = (
            upper_pieces[0]
            if len(upper_pieces) == 1
            else f"max({', '.join(upper_pieces)})"
        )
        self.w.line(f"for {var} in range({lower}, {upper} + 1):")
        self.w.push()
        self.open_loops.append(var)
        self.rename[f"{var}_cur"] = var
        self.emit_body(do.body, loop_path + [do])
        self.rename.pop(f"{var}_cur", None)
        self.open_loops.pop()
        self.w.pop()

    def _emit_plain_do(self, do: L.Do, loop_path: List[L.Do]):
        from ..lang.affine import to_affine

        lower = emit_linexpr(to_affine(do.lower), self.rename)
        upper = emit_linexpr(to_affine(do.upper), self.rename)
        step = to_affine(do.step).constant
        step_text = "" if step == 1 else f", {step}"
        self.w.line(
            f"for {do.var} in range({lower}, {upper} + 1{step_text}):"
        )
        self.w.push()
        self.open_loops.append(do.var)
        self.rename[f"{do.var}_cur"] = do.var
        self.emit_body(do.body, loop_path + [do])
        self.rename.pop(f"{do.var}_cur", None)
        self.open_loops.pop()
        self.w.pop()

    def _emit_loop_piece(
        self,
        do: L.Do,
        conjunct: Conjunct,
        prefix_vars: List[str],
        loop_path: List[L.Do],
    ):
        if self.options.compute == "kernels" and try_emit_kernel_piece(
            self, do, conjunct, prefix_vars, loop_path
        ):
            return
        var = do.var
        lowers, uppers, stride, base, mods = _var_bounds(
            conjunct, var, prefix_vars
        )
        if not lowers or not uppers:
            raise CodegenError(f"loop {var}: unbounded partitioned range")
        # Constraints not involving the loop variable (parameter or outer
        # conditions distinguishing this disjoint piece) guard the piece.
        guard_constraints = [
            c for c in conjunct.constraints if c.coeff(var) == 0
        ]
        guarded = False
        member_guard: Optional[int] = None
        var_wildcards = {
            w
            for w in conjunct.wildcards
            if any(
                c.coeff(w) for c in conjunct.constraints if c.coeff(var)
            )
        }
        shared = [
            w
            for w in conjunct.wildcards
            if w in var_wildcards
            and any(c.coeff(w) for c in guard_constraints)
        ]
        if shared:
            # A witness couples loop-var constraints to guard constraints:
            # check exact piece membership inside the loop instead.
            member_guard = self.emitter.register_fallback(
                IntegerSet(Space(tuple(prefix_vars)), [conjunct])
            )
        elif guard_constraints:
            guard_wildcards = [
                w
                for w in conjunct.wildcards
                if any(c.coeff(w) for c in guard_constraints)
            ]
            guard_conjunct = Conjunct(guard_constraints, guard_wildcards)
            guard_text = emit_conjunct_guard(guard_conjunct, self.rename)
            if guard_text is None:
                index = self.emitter.register_fallback(
                    IntegerSet(Space(()), [guard_conjunct])
                )
                overrides = ", ".join(
                    f"{name!r}: {name}"
                    for name in sorted(
                        {
                            v
                            for c in guard_constraints
                            for v in c.variables()
                            if v.startswith("my_")
                        }
                    )
                )
                guard_text = f"rt.member({index}, (), {{{overrides}}})"
            if guard_text != "True":
                self.w.line(f"if {guard_text}:")
                self.w.push()
                guarded = True
        lower = emit_lower(lowers, self.rename)
        upper = emit_upper(uppers, self.rename)
        if stride > 1:
            base_text = emit_linexpr(base, self.rename)
            self.w.line(
                f"for {var} in range(_align({lower}, {base_text}, "
                f"{stride}), {upper} + 1, {stride}):"
            )
        else:
            self.w.line(f"for {var} in range({lower}, {upper} + 1):")
        self.w.push()
        inner_guarded = False
        if member_guard is not None:
            args = ", ".join(prefix_vars)
            overrides = ", ".join(
                f"{name!r}: {name}"
                for name in sorted(
                    {
                        v
                        for c in conjunct.constraints
                        for v in c.variables()
                        if v.startswith("my_")
                    }
                )
            )
            self.w.line(
                f"if rt.member({member_guard}, ({args},), {{{overrides}}}):"
            )
            self.w.push()
            inner_guarded = True
        if mods:
            conds = " and ".join(
                f"({emit_linexpr(expr, self.rename)}) % {modulus} == 0"
                for expr, modulus in mods
            )
            self.w.line(f"if {conds}:")
            self.w.push()
            mods_guarded = True
        else:
            mods_guarded = False
        self.open_loops.append(var)
        self.rename[f"{var}_cur"] = var
        self.emit_body(do.body, loop_path + [do])
        self.rename.pop(f"{var}_cur", None)
        self.open_loops.pop()
        if mods_guarded:
            self.w.pop()
        if inner_guarded:
            self.w.pop()
        self.w.pop()
        if guarded:
            self.w.pop()

    def _flush_work(self):
        self.w.line(f"rt.work({self._work_var}[0])")
        self.w.line(f"rt.work({self._work_var}[2], vectorized=True)")
        self.w.line(f"rt.check({self._work_var}[1])")

    # -------------------------------------------------------------- reductions

    def _emit_reductions_after(self, do: L.Do, cps: List[CPInfo]):
        seen = set()
        for cp in cps:
            if cp.reduction is None or cp.replicated:
                continue
            target = cp.context.stmt.lhs.ident
            if (target, cp.reduction) in seen:
                continue
            seen.add((target, cp.reduction))
            if cp.reduction == "+":
                # Subtract the pre-nest value so it is counted once.
                self.w.line(
                    f"S[{target!r}] = rt.allreduce('+', "
                    f"S[{target!r}] - rt.red_base[{target!r}]) "
                    f"+ rt.red_base[{target!r}]"
                )
            else:
                self.w.line(
                    f"S[{target!r}] = rt.allreduce("
                    f"{cp.reduction!r}, S[{target!r}])"
                )

    # ------------------------------------------------------------------- ifs

    def _emit_if(self, stmt: L.If, loop_path: List[L.Do]):
        cond = self._expr(stmt.cond)
        self.w.line(f"if {cond}:")
        self.w.push()
        if stmt.then_body:
            self.emit_body(stmt.then_body, loop_path)
        else:
            self.w.line("pass")
        self.w.pop()
        if stmt.else_body:
            self.w.line("else:")
            self.w.push()
            self.emit_body(stmt.else_body, loop_path)
            self.w.pop()

    # ----------------------------------------------------------- VP loops

    def _vp_dims_for(self, cps: List[CPInfo]) -> List[DimOwnership]:
        dims: List[DimOwnership] = []
        seen = set()
        for cp in cps:
            if cp.replicated or cp.layout is None:
                continue
            for ownership in cp.layout.ownerships:
                if ownership is None or not ownership.needs_vp_loops:
                    continue
                if ownership.grid_dim in seen:
                    continue
                seen.add(ownership.grid_dim)
                dims.append(ownership)
        return dims

    def _busy_union(
        self, cps: List[CPInfo], outer_vars: Optional[List[str]] = None
    ) -> IntegerSet:
        """``busyVPSet`` of the statements, parameterized by the current
        iteration of the loops enclosing the VP loops (paper Figure 5:
        the Gauss busy set depends on PIVOT)."""
        from ..isets import Constraint as _C, LinExpr as _L

        busy: Optional[IntegerSet] = None
        for cp in cps:
            if cp.replicated:
                continue
            cp_map = cp.cp_map
            if outer_vars:
                constraints = [
                    _C.eq(_L.var(dim), _L.var(var))
                    for dim, var in zip(cp_map.out_dims, outer_vars)
                ]
                cp_map = cp_map.constrain(constraints)
            domain = cp_map.domain()
            busy = domain if busy is None else busy.union(domain)
        return busy.simplify() if busy is not None else None

    def _open_vp_loops(
        self, dims: List[DimOwnership], active: Optional[IntegerSet]
    ):
        """Figure 6(c): wrap VP loops restricted to myid's active VPs."""
        for ownership in dims:
            grid = self._grid_of(ownership)
            my = grid.my_names[ownership.grid_dim]
            dim_name = grid.dim_names[ownership.grid_dim]
            count = emit_linexpr(
                grid.extent_affine(ownership.grid_dim), self.rename
            )
            if self.options.active_vp and active is not None:
                lowers, uppers = _set_dim_bounds(active, dim_name)
            else:
                lowers = uppers = None
            if not lowers or not uppers:
                tlb = emit_linexpr(ownership.template_lb, self.rename)
                tub = emit_linexpr(ownership.template_ub, self.rename)
                if ownership.kind == VP_CYCLIC_K:
                    lower_text, upper_text = "1", (
                        f"_cdiv({tub} - {tlb} + 1, {ownership.block_size})"
                    )
                else:
                    lower_text, upper_text = tlb, tub
            else:
                lower_text = emit_lower(lowers, self.rename)
                upper_text = emit_upper(uppers, self.rename)
            residue = self._vp_residue(ownership, f"env[{my!r}]")
            self.w.line(
                f"for {my} in range(_align({lower_text}, {residue}, "
                f"{count}), {upper_text} + 1, {count}):"
            )
            self.w.push()

    def _close_vp_loops(self, dims: List[DimOwnership]):
        for _ in dims:
            self.w.pop()

    def _grid_of(self, ownership: DimOwnership) -> ProcessorGrid:
        for template in self.mapping.templates.values():
            if ownership in template.ownerships:
                return template.grid
        raise CodegenError("ownership without grid")

    def _vp_residue(self, ownership: DimOwnership, rank_text: str) -> str:
        """First VP coordinate owned by the given physical coordinate."""
        tlb = emit_linexpr(ownership.template_lb, self.rename)
        if ownership.kind == VP_CYCLIC:
            return f"({rank_text} + {tlb})"
        if ownership.kind == VP_CYCLIC_K:
            return f"({rank_text} + 1)"
        raise CodegenError(f"no VP residue for {ownership.kind}")

    # ----------------------------------------------------------- expressions

    def _expr(self, expr: L.Expr) -> str:
        if isinstance(expr, L.Num):
            return str(expr)
        if isinstance(expr, L.Name):
            ident = expr.ident
            if self._is_scalar(ident):
                return f"S[{ident!r}]"
            return ident
        if isinstance(expr, L.ArrayRef):
            return self._array_index(expr)
        if isinstance(expr, L.BinOp):
            op = {"/=": "!="}.get(expr.op, expr.op)
            if op == "/":
                return (
                    f"({self._expr(expr.left)} / {self._expr(expr.right)})"
                )
            return f"({self._expr(expr.left)} {op} {self._expr(expr.right)})"
        if isinstance(expr, L.UnOp):
            return f"(-{self._expr(expr.operand)})"
        if isinstance(expr, L.Call):
            args = ", ".join(self._expr(a) for a in expr.args)
            func = {"mod": "np.mod", "sqrt": "np.sqrt", "exp": "np.exp"}.get(
                expr.func, expr.func
            )
            return f"{func}({args})"
        raise CodegenError(f"cannot emit expression {expr!r}")

    def _is_scalar(self, ident: str) -> bool:
        return any(s.name == ident for s in self.emitter.program.scalars)

    def _array_index(self, ref: L.ArrayRef) -> str:
        lbs = self.emitter.array_lbounds(ref.array)
        parts = []
        for sub, lb in zip(ref.subscripts, lbs):
            sub_text = self._expr(sub)
            lb_text = emit_linexpr(lb, self.rename)
            parts.append(f"({sub_text}) - {lb_text}")
        return f"{ref.array}[{', '.join(parts)}]"

    # -------------------------------------------------------------- comm events

    def _emit_events_for(self, stmt: L.Stmt, when: str, skip=None):
        for event in self.analysis.events:
            if event is skip:
                continue
            if event.placed.anchor is stmt and event.placed.when == when:
                self._emit_event(event)

    def _emit_event(self, event: AnalyzedEvent):
        self.w.line(f"# --- communication event {event.tag} "
                    f"({event.placed.event.array}) ---")
        self._emit_send_side(event)
        self._emit_recv_side(event)

    # The send side: pack per partner, then send (Figure 6 structure).
    def _emit_send_side(self, event: AnalyzedEvent):
        layout = event.placed.event.layout
        comm_map = event.sets.send_comm_map
        if comm_map.is_empty():
            has_any = False
        else:
            has_any = True
        tag = f"{event.tag}s"
        inplace = self._inplace_flag(event, "send")
        self._emit_comm_side(
            layout, comm_map, tag, sending=True,
            active=event.active_vp.active_send_vp
            if event.active_vp is not None else None,
            inplace_flag=inplace,
            enabled=has_any,
        )

    def _emit_recv_side(self, event: AnalyzedEvent):
        layout = event.placed.event.layout
        comm_map = event.sets.recv_comm_map
        tag = f"{event.tag}s"  # must match the sender's tag
        inplace = self._inplace_flag(event, "recv")
        self._emit_comm_side(
            layout, comm_map, tag, sending=False,
            active=event.active_vp.active_recv_vp
            if event.active_vp is not None else None,
            inplace_flag=inplace,
            enabled=not comm_map.is_empty(),
        )

    def _inplace_flag(self, event: AnalyzedEvent, side: str) -> str:
        if not self.options.inplace:
            return "False"
        result = (
            event.inplace_send if side == "send" else event.inplace_recv
        )
        if result is None:
            return "False"
        from ..isets import Answer

        if result.answer is Answer.TRUE:
            return "True"
        if result.answer is Answer.FALSE:
            return "False"
        name = f"_inplace_{event.tag}_{side}"
        self.emitter.runtime_inplace.append(
            (name, result, event.placed.event.layout)
        )
        return f"rt.inplace[{name!r}]"

    def _emit_comm_side(
        self,
        layout: Layout,
        comm_map: IntegerMap,
        tag: str,
        sending: bool,
        active: Optional[IntegerSet],
        inplace_flag: str,
        enabled: bool,
    ):
        if not enabled:
            return
        grid = layout.grid
        my_vp_dims = [
            o for o in layout.ownerships
            if o is not None and o.needs_vp_loops
        ]
        verb = "send" if sending else "recv"
        bufs = f"_bufs_{tag}_{verb}"
        self.w.line(f"{bufs} = {{}}")
        # My-side VP loops (cyclic dims): restrict to active VPs of myid.
        opened_my = 0
        if my_vp_dims:
            use = active if self.options.active_vp else None
            self._open_vp_loops(my_vp_dims, use)
            opened_my = len(my_vp_dims)
        # Physical partner loops, one per grid dim.
        partner_vars = []
        for dim in range(grid.rank):
            extent = emit_linexpr(grid.extent_affine(dim), self.rename)
            qvar = f"_q{dim}"
            partner_vars.append(qvar)
            self.w.line(f"for {qvar} in range({extent}):")
            self.w.push()
        rank_expr = self._linearize(grid, partner_vars)
        self.w.line(f"_qrank = {rank_expr}")
        self.w.line("if _qrank == rt.rank:")
        self.w.push()
        self.w.line("pass")
        self.w.pop()
        self.w.line("else:")
        self.w.push()

        # Bind partner (virtual) processor coordinates p_* per grid dim.
        closes = 0
        rename = dict(self.rename)
        for dim in range(grid.rank):
            pname = layout.proc_dims[dim]
            ownership = layout.ownerships[dim]
            if ownership is None or not ownership.is_vp:
                self.w.line(f"{pname} = {partner_vars[dim]}")
            elif ownership.kind == VP_BLOCK:
                block = self._block_text(ownership)
                tlb = emit_linexpr(ownership.template_lb, rename)
                self.w.line(
                    f"{pname} = {block} * {partner_vars[dim]} + {tlb}"
                )
            else:
                # Partner VP loop (cyclic): stride P, residue of q.
                count = emit_linexpr(
                    grid.extent_affine(dim), rename
                )
                lowers, uppers = _map_proc_bounds(comm_map, pname)
                if not lowers or not uppers:
                    tlb = emit_linexpr(ownership.template_lb, rename)
                    tub = emit_linexpr(ownership.template_ub, rename)
                    lo_text, up_text = tlb, tub
                    if ownership.kind == VP_CYCLIC_K:
                        lo_text = "1"
                        up_text = (
                            f"_cdiv({tub} - {tlb} + 1, "
                            f"{ownership.block_size})"
                        )
                else:
                    lo_text = emit_lower(lowers, rename)
                    up_text = emit_upper(uppers, rename)
                residue = self._vp_residue(ownership, partner_vars[dim])
                self.w.line(
                    f"for {pname} in range(_align({lo_text}, {residue}, "
                    f"{count}), {up_text} + 1, {count}):"
                )
                self.w.push()
                closes += 1

        # Data loops from the comm map, per conjunct.
        data_set = IntegerSet(
            Space(comm_map.out_dims),
            [c for c in comm_map.conjuncts],
        ).simplify(full=True)
        payload = "PACK" if sending else "COUNT"
        fragments = generate_loops(data_set, payload)
        array = layout.array
        lbs = self.emitter.array_lbounds(array)
        data_dims = comm_map.out_dims

        if self.options.dataplane == "sections":
            self._emit_section_fragments(
                fragments, rename, bufs, sending, array, data_dims
            )
        else:
            self._emit_element_fragments(
                fragments, rename, bufs, sending, array, data_dims, lbs
            )
        for _ in range(closes):
            self.w.pop()
        self.w.pop()  # else:
        for _ in range(grid.rank):
            self.w.pop()
        if opened_my:
            self._close_vp_loops(my_vp_dims)
            opened_my = 0

        # Transfer phase.
        if self.options.dataplane == "sections":
            if sending:
                self.w.line(f"for _q, _secs in {bufs}.items():")
                self.w.push()
                self.w.line(
                    f"rt.send_section(_q, {tag!r}, {array!r}, _secs, "
                    f"inplace={inplace_flag})"
                )
                self.w.pop()
            else:
                self.w.line(f"for _q, _count in sorted({bufs}.items()):")
                self.w.push()
                self.w.line("if _count:")
                self.w.push()
                self.w.line(
                    f"rt.recv_section(_q, {tag!r}, {array!r}, "
                    f"inplace={inplace_flag})"
                )
                self.w.pop()
                self.w.pop()
        elif sending:
            self.w.line(f"for _q, (_idx, _vals) in {bufs}.items():")
            self.w.push()
            self.w.line(
                f"rt.send(_q, {tag!r}, _vals, indices=_idx, "
                f"inplace={inplace_flag})"
            )
            self.w.pop()
        else:
            self.w.line(f"for _q, _count in sorted({bufs}.items()):")
            self.w.push()
            self.w.line("if _count:")
            self.w.push()
            self.w.line(
                f"_idx, _vals = rt.recv(_q, {tag!r}, "
                f"inplace={inplace_flag})"
            )
            offset = ", ".join(
                f"(_ix[{k}]) - {emit_linexpr(lb, rename)}"
                for k, lb in enumerate(lbs)
            )
            self.w.line("for _ix, _v in zip(_idx, _vals):")
            self.w.push()
            self.w.line(f"{array}[{offset}] = _v")
            self.w.pop()
            self.w.pop()
            self.w.pop()

    def _emit_element_fragments(
        self, fragments, rename, bufs, sending, array, data_dims, lbs
    ):
        """Legacy data plane: per-element pack loops (index/value lists)."""

        def emit_leaf(payload_kind: str):
            index_tuple = ", ".join(data_dims) + ","
            if sending:
                offset = ", ".join(
                    f"({d}) - {emit_linexpr(lb, rename)}"
                    for d, lb in zip(data_dims, lbs)
                )
                self.w.line(
                    f"{bufs}.setdefault(_qrank, ([], []))[0]"
                    f".append(({index_tuple}))"
                )
                self.w.line(
                    f"{bufs}[_qrank][1].append({array}[{offset}])"
                )
            else:
                self.w.line(
                    f"{bufs}[_qrank] = {bufs}.get(_qrank, 0) + 1"
                )

        self._emit_loop_fragments(fragments, rename, emit_leaf)

    def _emit_section_fragments(
        self, fragments, rename, bufs, sending, array, data_dims
    ):
        """Descriptor data plane: lower each qualifying fragment to a
        strided section (``("S", ...)``) computed with O(dims) arithmetic;
        fragments whose nests are not rectangular strided spans fall back
        to per-element loops accumulating an exact fancy-index section
        (``("F", ...)``).  Receivers only need element *counts* (the
        sender's descriptors travel with the message), so a qualifying
        fragment contributes a closed-form count product."""
        fancy: List = []
        plans = []
        for node in fragments:
            plan = _section_plan(node, data_dims)
            if plan is None:
                fancy.append(node)
            else:
                plans.append(plan)
        if fancy:
            self.w.line("_fidx = []")
        for guards, loops in plans:
            opened = 0
            for guard in guards:
                self._emit_guard_open(guard, rename)
                opened += 1
            for k, loop in enumerate(loops):
                lower = emit_lower(loop.lowers, rename)
                upper = emit_upper(loop.uppers, rename)
                if loop.stride > 1:
                    base = emit_linexpr(loop.align_base, rename)
                    self.w.line(
                        f"_sl{k} = _align({lower}, {base}, {loop.stride})"
                    )
                else:
                    self.w.line(f"_sl{k} = {lower}")
                self.w.line(f"_su{k} = {upper}")
            nonempty = " and ".join(
                f"_sl{k} <= _su{k}" for k in range(len(loops))
            )
            self.w.line(f"if {nonempty}:")
            self.w.push()
            counts = [
                f"(_su{k} - _sl{k}) // {loop.stride} + 1"
                for k, loop in enumerate(loops)
            ]
            if sending:
                triples = ", ".join(
                    f"(_sl{k}, {count}, {loop.stride})"
                    for k, (count, loop) in enumerate(zip(counts, loops))
                )
                trailing = "," if len(loops) == 1 else ""
                self.w.line(
                    f"{bufs}.setdefault(_qrank, [])"
                    f".append(('S', ({triples}{trailing})))"
                )
            else:
                product = " * ".join(f"({c})" for c in counts)
                self.w.line(
                    f"{bufs}[_qrank] = {bufs}.get(_qrank, 0) + {product}"
                )
            self.w.pop()
            for _ in range(opened):
                self.w.pop()

        if fancy:
            index_tuple = ", ".join(data_dims) + ","

            def emit_leaf(payload_kind: str):
                if sending:
                    self.w.line(f"_fidx.append(({index_tuple}))")
                else:
                    self.w.line(
                        f"{bufs}[_qrank] = {bufs}.get(_qrank, 0) + 1"
                    )

            self._emit_loop_fragments(fancy, rename, emit_leaf)
            if sending:
                self.w.line("if _fidx:")
                self.w.push()
                self.w.line(
                    f"{bufs}.setdefault(_qrank, [])"
                    f".append(('F', tuple(zip(*_fidx))))"
                )
                self.w.pop()

    def _emit_guard_open(self, node: GuardNode, rename) -> None:
        """Open one guard ``if`` (caller pops the indent)."""
        terms = [
            f"({emit_linexpr(c.expr, rename)} "
            f"{'==' if c.is_equality else '>='} 0)"
            for c in node.constraints
        ]
        terms += [
            f"({emit_linexpr(expr, rename)}) % {modulus} == 0"
            for expr, modulus in node.mods
        ]
        conds = " and ".join(terms) or "True"
        self.w.line(f"if {conds}:")
        self.w.push()

    def _block_text(self, ownership: DimOwnership) -> str:
        if isinstance(ownership.block_size, int):
            return str(ownership.block_size)
        return emit_linexpr(ownership.block_size, self.rename)

    def _linearize(self, grid: ProcessorGrid, vars: List[str]) -> str:
        """Row-major rank from grid coordinates."""
        text = vars[0]
        for dim in range(1, grid.rank):
            extent = emit_linexpr(grid.extent_affine(dim), self.rename)
            text = f"({text}) * {extent} + {vars[dim]}"
        return text

    def _emit_loop_fragments(
        self,
        fragments: List,
        rename: Mapping[str, str],
        emit_leaf: Callable[[str], None],
    ):
        for node in fragments:
            self._emit_loop_node(node, rename, emit_leaf)

    def _emit_loop_node(self, node, rename, emit_leaf):
        if isinstance(node, StmtNode):
            emit_leaf(node.payload)
            return
        if isinstance(node, GuardNode):
            terms = [
                f"({emit_linexpr(c.expr, rename)} "
                f"{'==' if c.is_equality else '>='} 0)"
                for c in node.constraints
            ]
            terms += [
                f"({emit_linexpr(expr, rename)}) % {modulus} == 0"
                for expr, modulus in node.mods
            ]
            conds = " and ".join(terms) or "True"
            self.w.line(f"if {conds}:")
            self.w.push()
            for child in node.body:
                self._emit_loop_node(child, rename, emit_leaf)
            self.w.pop()
            return
        if isinstance(node, LoopNode):
            lower = emit_lower(node.lowers, rename)
            upper = emit_upper(node.uppers, rename)
            if node.stride > 1:
                base = emit_linexpr(node.align_base, rename)
                self.w.line(
                    f"for {node.var} in range(_align({lower}, {base}, "
                    f"{node.stride}), {upper} + 1, {node.stride}):"
                )
            else:
                self.w.line(
                    f"for {node.var} in range({lower}, {upper} + 1):"
                )
            self.w.push()
            for child in node.body:
                self._emit_loop_node(child, rename, emit_leaf)
            self.w.pop()
            return
        raise CodegenError(f"unknown loop node {node!r}")


# ---------------------------------------------------------------------------
# Section-descriptor qualification
# ---------------------------------------------------------------------------

def _section_plan(node, data_dims: Sequence[str]):
    """Decide whether one ``generate_loops`` fragment is a rectangular
    strided span over ``data_dims``.

    Qualifies when the fragment is (optional data-dim-free GuardNodes)
    wrapping exactly ``len(data_dims)`` LoopNodes in dimension order —
    each with a single child, bounds/align-base free of *other* data
    dims — ending in a StmtNode.  Returns ``(guards, loops)`` or ``None``
    (→ exact fancy-index fallback): triangular conjuncts (inner bounds
    referencing outer data dims), interior guards from secondary stride
    equalities, and disjunctive guards all disqualify.
    """
    dims_set = set(data_dims)

    def _mentions_data_dim(expr: LinExpr) -> bool:
        return any(var in dims_set for var, _coeff in expr.terms())

    guards: List[GuardNode] = []
    while isinstance(node, GuardNode):
        if node.alternatives:
            return None
        if any(c.coeff(d) for c in node.constraints for d in data_dims):
            return None
        if any(_mentions_data_dim(expr) for expr, _m in node.mods):
            return None
        if len(node.body) != 1:
            return None
        guards.append(node)
        node = node.body[0]

    loops: List[LoopNode] = []
    for k, dim in enumerate(data_dims):
        if not isinstance(node, LoopNode) or node.var != dim:
            return None
        inner_dims = dims_set - {d for d in data_dims[:k]} - {dim}
        outer_dims = set(data_dims[:k])
        referenced = set()
        for bound in list(node.lowers) + list(node.uppers):
            referenced.update(v for v, _c in bound.expr.terms())
        if node.align_base is not None:
            referenced.update(v for v, _c in node.align_base.terms())
        if referenced & (outer_dims | inner_dims):
            return None
        if len(node.body) != 1:
            return None
        loops.append(node)
        node = node.body[0]
    if not isinstance(node, StmtNode):
        return None
    return guards, loops


# ---------------------------------------------------------------------------
# Bound helpers
# ---------------------------------------------------------------------------

def _var_bounds(conjunct: Conjunct, var: str, prefix_vars: List[str]):
    """Bounds and stride for a loop var; bounds may reference outer vars,
    parameters, and my-symbols (all in scope in generated code)."""
    from ..isets.loopgen import _detect_strides
    from ..isets.omega import solve_equalities

    solved = solve_equalities(
        conjunct, set(conjunct.free_variables())
    )
    if solved is None:
        return [], [], 1, None, []
    constraints, strides, mod_guards = _detect_strides(solved, prefix_vars)
    keep = set(solved.free_variables())  # everything is symbolic but var
    projected = inequality_projection(
        Conjunct(constraints, ()), keep
    )
    lowers, uppers, _ = extract_bounds(projected, var)
    mods = [(expr, modulus) for expr, modulus, _level in mod_guards]
    stride_info = strides.get(var)
    if stride_info is not None:
        return lowers, uppers, stride_info.modulus, stride_info.base, mods
    return lowers, uppers, 1, None, mods


def _set_dim_bounds(subset: IntegerSet, dim: str):
    """Union bounds of one dim across conjuncts (approximate for unions)."""
    all_lowers, all_uppers = [], []
    for conjunct in subset.conjuncts:
        constraints = inequality_projection(
            conjunct, {dim} | set(conjunct.free_variables())
            - set(subset.space.in_dims)
        )
        lowers, uppers, _ = extract_bounds(constraints, dim)
        if not lowers or not uppers:
            return None, None
        all_lowers.append(lowers)
        all_uppers.append(uppers)
    if len(all_lowers) == 1:
        return all_lowers[0], all_uppers[0]
    # Union of boxes: cannot take max-of-lowers across conjuncts; fall back
    # to unrestricted bounds when shapes differ.
    return None, None


def _map_proc_bounds(comm_map: IntegerMap, pname: str):
    """Bounds for a partner VP dim across the comm map's conjuncts."""
    all_lowers, all_uppers = [], []
    for conjunct in comm_map.conjuncts:
        keep = {pname} | (
            set(conjunct.free_variables())
            - set(comm_map.out_dims) - set(comm_map.in_dims)
        )
        constraints = inequality_projection(conjunct, keep)
        lowers, uppers, _ = extract_bounds(constraints, pname)
        if not lowers or not uppers:
            return None, None
        all_lowers.extend(lowers)
        all_uppers.extend(uppers)
    if not all_lowers:
        return None, None
    # Over-approximate: min of lowers / max of uppers would need runtime
    # min/max across conjuncts; simply pass all bounds through (emit_lower
    # takes max) only when there is a single conjunct.
    if len(comm_map.conjuncts) == 1:
        return all_lowers, all_uppers
    return None, None


def _eliminate_symbols(subset: IntegerSet, symbols: List[str]) -> IntegerSet:
    """Existentially eliminate free symbols (e.g. VP my-coordinates)."""
    from ..isets.omega import project_out as _project_out

    conjuncts = []
    for conjunct in subset.conjuncts:
        present = [s for s in symbols if conjunct.uses(s)]
        if not present:
            conjuncts.append(conjunct)
            continue
        conjuncts.extend(_project_out(conjunct, present))
    return IntegerSet(subset.space, conjuncts).simplify()


def _disjoint(subset: IntegerSet) -> List[IntegerSet]:
    from ..isets.ops import split_disjoint

    return split_disjoint(subset)


