"""Cold vs. warm compiles through the cache subsystem (→ ``BENCH_cache.json``).

For each Table 1 workload (synthetic SP with fixed and symbolic processor
arrays, TOMCATV) this benchmark measures:

* a **cold** compile — empty persistent cache, memoization caches reset;
* a **warm** compile — same source/options, served from the persistent
  compile cache (required to be >= 5x faster; in practice it is a pickle
  load, thousands of times faster);
* the in-process memoization hit rates the cold compile itself achieved
  (the Figure 3/4/5 equations revisit the same conjuncts constantly, so
  the rates are substantial even within one compile).

It also A/B-checks ``CompilerOptions(caching="off")`` on the smallest
workload: the uncached path must emit a byte-identical node program.
Results land in ``BENCH_cache.json`` at the repository root.
"""

import json
import platform
import sys
import time
from pathlib import Path

import pytest

from repro import compile_program
from repro.cache.manager import caches, reset_caches
from repro.core.options import CompilerOptions
from repro.programs import sp_like, tomcatv

from conftest import emit

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cache.json"

# Same sizing as the Table 1 reproduction: ratios, not absolute seconds,
# are the claim under test.
SP_KW = dict(routines=3, nests_per_routine=2)

WORKLOADS = {
    "sp_fixed": lambda: sp_like(symbolic_procs=False, **SP_KW),
    "sp_symbolic": lambda: sp_like(symbolic_procs=True, **SP_KW),
    "tomcatv": lambda: tomcatv(),
}


def _record(section: str, payload) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data.setdefault("meta", {}).update(
        {
            "generated_by": "benchmarks/test_cache_bench.py",
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
    )
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _memo_rates(cache_stats):
    """Per-cache and aggregate hit rates from a compile's counter delta."""
    rates = {}
    total_hits = total_lookups = 0
    for name, entry in sorted(cache_stats.items()):
        hits = entry.get("hits", 0)
        lookups = hits + entry.get("misses", 0)
        total_hits += hits
        total_lookups += lookups
        if lookups:
            rates[name] = {
                "hits": hits,
                "lookups": lookups,
                "hit_rate": round(hits / lookups, 4),
            }
    rates["aggregate"] = {
        "hits": total_hits,
        "lookups": total_lookups,
        "hit_rate": round(total_hits / max(total_lookups, 1), 4),
    }
    return rates


@pytest.mark.benchmark(group="cache")
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_cold_vs_warm_persistent_compile(workload, tmp_path):
    source = WORKLOADS[workload]()
    options = CompilerOptions(cache_dir=str(tmp_path / "cc"))

    reset_caches()
    t0 = time.perf_counter()
    cold = compile_program(source, options)
    cold_s = time.perf_counter() - t0
    assert not cold.cache_hit

    t0 = time.perf_counter()
    warm = compile_program(source, options)
    warm_s = time.perf_counter() - t0
    assert warm.cache_hit
    assert warm.source == cold.source

    speedup = cold_s / max(warm_s, 1e-9)
    rates = _memo_rates(cold.phases.cache_stats)
    emit(f"{workload}: cold {cold_s:.2f}s, warm {warm_s * 1e3:.1f}ms "
         f"({speedup:.0f}x), memo hit rate "
         f"{100 * rates['aggregate']['hit_rate']:.1f}%")

    # Acceptance criterion: warm persistent recompile >= 5x faster.
    assert speedup >= 5.0, (
        f"warm compile only {speedup:.1f}x faster "
        f"({cold_s:.2f}s cold vs {warm_s:.2f}s warm)"
    )
    # The cold compile itself must benefit from memoization.
    assert rates["aggregate"]["hits"] > 0

    _record(
        f"persistent.{workload}",
        {
            "cold_compile_s": round(cold_s, 3),
            "warm_compile_s": round(warm_s, 5),
            "warm_speedup_x": round(speedup, 1),
            "memo_hit_rates_cold": rates,
        },
    )


@pytest.mark.benchmark(group="cache")
def test_uncached_ab_path_identical_and_timed():
    source = sp_like(symbolic_procs=False, routines=1, nests_per_routine=2)

    reset_caches()
    t0 = time.perf_counter()
    warmup = compile_program(source)  # populate the memo caches
    first_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    memoized = compile_program(source)
    memo_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    uncached = compile_program(source, CompilerOptions(caching="off"))
    uncached_s = time.perf_counter() - t0

    # Acceptance criterion: byte-identical emitted programs either way.
    assert memoized.source == warmup.source == uncached.source
    assert not uncached.phases.cache_stats

    emit(f"A/B: first {first_s:.2f}s, re-memoized {memo_s:.2f}s, "
         f"caching=off {uncached_s:.2f}s")
    _record(
        "ab.caching_off",
        {
            "first_compile_s": round(first_s, 3),
            "memoized_recompile_s": round(memo_s, 3),
            "uncached_recompile_s": round(uncached_s, 3),
            "memo_recompile_speedup_x": round(
                uncached_s / max(memo_s, 1e-9), 2
            ),
            "byte_identical_source": True,
        },
    )


@pytest.mark.benchmark(group="cache")
def test_memo_hit_rate_reported_in_phase_table():
    reset_caches()
    compiled = compile_program(
        sp_like(symbolic_procs=False, routines=1, nests_per_routine=1)
    )
    table = compiled.phases.format_table("phases")
    assert "cache" in table and "isets.emptiness" in table
    top = {
        name: stats.hit_rate
        for name, stats in caches.stats().items()
        if stats.lookups
    }
    emit("per-cache hit rates: " + ", ".join(
        f"{k} {100 * v:.0f}%" for k, v in sorted(top.items())
    ))
