"""Data-plane microbenchmarks (→ ``BENCH_dataplane.json``).

Measures the section-descriptor data plane against the legacy
per-element path it replaced:

* **pack/unpack throughput** — ``pack_sections``/``scatter_sections``
  versus a faithful re-creation of the old element-list path (Python
  loop gathering indices into a list, Python loop scattering it back).
  The vectorized plane must be at least 3x faster.
* **end-to-end mp wall-clock** — the same program compiled twice, with
  ``CompilerOptions(dataplane="sections")`` (default) and
  ``dataplane="elements"``, run on the multiprocess backend where the
  data movement is physically real.  Covers the standard Jacobi
  kernel, a wide-halo Jacobi variant whose communication dominates,
  and TOMCATV.
* **validation** — every compiled configuration is checked
  element-by-element against the serial interpreter on all three
  backends.

Absolute times are machine-dependent; the recorded JSON gives future
PRs a trajectory, the assertions pin only the relative wins that
motivated the descriptor plane.
"""

import itertools
import statistics
import time

import numpy as np
import pytest

from repro import CompilerOptions, compile_program, run_compiled
from repro.programs import tomcatv
from repro.runtime.sections import (
    message_count,
    pack_sections,
    scatter_sections,
    section_view,
)

from conftest import emit, record_dataplane as _record

JACOBI_STYLE = """
program jacobi1d
  parameter n
  parameter niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 0.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 2, n - 1
      a(i) = 0.5 * (b(i-1) + b(i+1))
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""

# Same stencil with a 96-element reach: every boundary exchange moves a
# 96-element section, so the pack/transfer/scatter path dominates the
# per-rank compute and the data-plane difference shows up in wall-clock.
JACOBI_WIDE = """
program jacobiwide
  parameter n
  parameter niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 0.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 97, n - 96
      a(i) = 0.5 * (b(i-96) + b(i+96))
    end do
    do i = 97, n - 96
      b(i) = a(i)
    end do
  end do
end
"""


# ---------------------------------------------------------------------------
# Pack/unpack throughput: vectorized sections vs the element-list path
# ---------------------------------------------------------------------------

def _section_points(section):
    kind, dims = section
    if kind == "S":
        return itertools.product(
            *(range(s, s + (c - 1) * t + 1, t) for s, c, t in dims)
        )
    return zip(*dims)


def _element_pack(array, lbounds, sections):
    """The pre-descriptor data plane: enumerate every (global) index in
    Python, gather into a list — exactly what the old generated pack
    loops plus ``rt.send(values=[...])`` did."""
    values = []
    for section in sections:
        for point in _section_points(section):
            local = tuple(g - lb for g, lb in zip(point, lbounds))
            values.append(float(array[local]))
    return values


def _element_scatter(array, lbounds, sections, values):
    pos = 0
    for section in sections:
        for point in _section_points(section):
            local = tuple(g - lb for g, lb in zip(point, lbounds))
            array[local] = values[pos]
            pos += 1
    return pos


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="dataplane")
def test_pack_unpack_throughput(benchmark):
    """Vectorized pack/scatter must beat the element-list path >= 3x."""
    n = 512
    src = np.arange(n * n, dtype=np.float64).reshape(n, n)
    dst = np.zeros_like(src)
    lb = (0, 0)
    cases = {
        # one boundary row: the common halo-exchange shape
        "contiguous_row": [("S", ((5, 1, 1), (0, n, 1)))],
        # one boundary column: strided in memory
        "strided_column": [("S", ((0, n, 1), (7, 1, 1)))],
        # an interior block, as coalesced multi-row messages produce
        "block_64x64": [("S", ((64, 64, 1), (64, 64, 1)))],
    }

    def run():
        rows = {}
        for label, sections in cases.items():
            nbytes = 8 * message_count(sections)

            def vec_roundtrip():
                payload, _, _ = pack_sections(
                    src, lb, sections, force_copy=True
                )
                scatter_sections(dst, lb, sections, payload)

            def elem_roundtrip():
                values = _element_pack(src, lb, sections)
                _element_scatter(dst, lb, sections, values)

            vec_s = _best_of(vec_roundtrip)
            elem_s = _best_of(elem_roundtrip)
            rows[label] = {
                "bytes": nbytes,
                "sections_mb_s": nbytes / vec_s / 1e6,
                "elements_mb_s": nbytes / elem_s / 1e6,
                "speedup": elem_s / vec_s,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, row in rows.items():
        emit(
            f"pack+scatter {label:15s}: sections "
            f"{row['sections_mb_s']:9.1f} MB/s   elements "
            f"{row['elements_mb_s']:7.1f} MB/s   ({row['speedup']:.1f}x)"
        )
        # Roundtrip correctness, then the headline claim.
        for section in cases[label]:
            np.testing.assert_array_equal(
                section_view(dst, lb, section),
                section_view(src, lb, section),
            )
        assert row["speedup"] >= 3.0, (
            f"{label}: vectorized plane only {row['speedup']:.2f}x faster"
        )
    _record("pack_unpack_throughput", {"grid": [n, n], "results": rows})


# ---------------------------------------------------------------------------
# End-to-end: sections vs elements on the multiprocess backend
# ---------------------------------------------------------------------------

END_TO_END = {
    "jacobi1d": (JACOBI_STYLE, {"n": 512, "niter": 4}),
    "jacobi_wide": (JACOBI_WIDE, {"n": 512, "niter": 6}),
    "tomcatv": (tomcatv(), {"n": 64, "niter": 2}),
}


@pytest.mark.benchmark(group="dataplane")
def test_mp_wallclock_sections_vs_elements(benchmark):
    def run():
        rows = {}
        for name, (source, params) in END_TO_END.items():
            compiled = {
                plane: compile_program(
                    source, CompilerOptions(dataplane=plane)
                )
                for plane in ("sections", "elements")
            }
            pair = {}
            # Interleave repetitions: mp launch times are noisy enough
            # that back-to-back best-of runs can order two equal planes
            # either way; the median of interleaved runs is stable.
            walls = {plane: [] for plane in compiled}
            outcomes = {}
            for _ in range(5):
                for plane, prog in compiled.items():
                    outcome = run_compiled(
                        prog, params=params, nprocs=4,
                        backend="mp", validate=False,
                    )
                    walls[plane].append(outcome.max_rank_wall_s)
                    outcomes[plane] = outcome
            for plane, outcome in outcomes.items():
                pair[plane] = {
                    "wall_s": statistics.median(walls[plane]),
                    "messages": outcome.stats.total_messages,
                    "bytes": outcome.stats.total_bytes,
                    "bytes_copied": outcome.stats.total_bytes_copied,
                    "bytes_viewed": outcome.stats.total_bytes_viewed,
                }
            pair["speedup"] = (
                pair["elements"]["wall_s"] / pair["sections"]["wall_s"]
            )
            rows[name] = pair
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, pair in rows.items():
        emit(
            f"mp end-to-end {name:12s}: sections "
            f"{pair['sections']['wall_s'] * 1e3:8.2f} ms   elements "
            f"{pair['elements']['wall_s'] * 1e3:8.2f} ms   "
            f"({pair['speedup']:.2f}x)"
        )
        # The model-level traffic is identical; only the plane differs.
        assert (
            pair["sections"]["bytes"] == pair["elements"]["bytes"]
        ), f"{name}: data planes moved different byte totals"
        # Descriptor sends on mp are zero-copy: viewed traffic appears.
        assert pair["sections"]["bytes_viewed"] > 0
    # On the comm-dominated kernel the vectorized plane must win.
    assert rows["jacobi_wide"]["speedup"] > 1.0, (
        "sections plane slower than element lists on wide-halo Jacobi"
    )
    _record(
        "mp_sections_vs_elements",
        {
            "nprocs": 4,
            "params": {k: v[1] for k, v in END_TO_END.items()},
            "results": rows,
        },
    )


# ---------------------------------------------------------------------------
# Validation: every backend, element-by-element vs the serial interpreter
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["threads", "mp", "inproc-seq"])
def test_dataplane_validates_everywhere(backend):
    compiled = compile_program(JACOBI_WIDE)
    # validate=True raises on any element-wise mismatch vs the serial
    # interpreter.
    outcome = run_compiled(
        compiled, params={"n": 256, "niter": 2}, nprocs=4,
        backend=backend, validate=True,
    )
    assert outcome.stats.total_messages > 0


def test_dataplane_smoke():
    """Tiny always-fast end-to-end check; CI's benchmark-smoke job runs
    exactly this (mp backend, 2 ranks, validated)."""
    compiled = compile_program(JACOBI_STYLE)
    outcome = run_compiled(
        compiled, params={"n": 64, "niter": 2}, nprocs=2,
        backend="mp", validate=True,
    )
    assert outcome.stats.total_bytes_viewed > 0
