"""Compile-service load harness (→ ``BENCH_service.json``).

Boots the threaded compile server in-process and drives it with a
population of simulated clients, each owning its own keep-alive HTTP
connection, in three phases:

* **burst** — many clients request the *same* not-yet-compiled
  fingerprint simultaneously: single-flight must compile it once and
  coalesce the rest;
* **mixed** — a 90/10 hot/cold request mix over a working set of
  benchmark programs (hot) and fresh stencil variants (cold), the
  steady state of a shared compile server;
* **audit** — every artifact the service returned must be byte-identical
  to a single-client in-process compile of the same source.

Gates (the paper's Table 1 economics, restated for a service): zero
dropped or failed requests, ≥50 % coalescing on the burst, and a hot
path whose p99 beats the cold-compile p50 by ≥10×.

Scale knobs (CI runs tens of clients, the committed benchmark 1000+):

* ``REPRO_SERVICE_CLIENTS`` — total requests in the mixed phase
  (default 1000);
* ``REPRO_SERVICE_BURST``   — clients in the coalescing burst
  (default 64);
* ``REPRO_SERVICE_WORKERS`` — simultaneous in-flight clients
  (default 32).
"""

import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from conftest import emit, record_service
from repro import CompilerOptions, compile_program
from repro.cache.manager import reset_caches
from repro.programs import gauss, tomcatv
from repro.service import ServiceClient, create_server
from repro.service.protocol import sha256_text

TOTAL_CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "1000"))
BURST_CLIENTS = int(os.environ.get("REPRO_SERVICE_BURST", "64"))
WORKERS = int(os.environ.get("REPRO_SERVICE_WORKERS", "32"))
HOT_FRACTION = 0.9

# A JACOBI-style 1-D stencil.  The full 2-D Figure 7 codes take minutes
# of cold-compile time each — fine for Table 1, hopeless for a load
# generator that needs ~100 distinct cold fingerprints per run.
STENCIL = """
program stencil
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * SCALE
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def stencil(scale: float) -> str:
    return STENCIL.replace("SCALE", str(float(scale)))


HOT_PROGRAMS = {
    "tomcatv": tomcatv(),
    "gauss": gauss(),
    "stencil-a": stencil(0.5),
    "stencil-b": stencil(0.25),
}


def cold_variant(tag: int) -> str:
    """A distinct stencil source (fresh fingerprint) per tag."""
    return stencil(1000.0 + tag)


def percentile(samples, p):
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    reset_caches()
    root = tmp_path_factory.mktemp("service-load-store")
    server = create_server(port=0, cache_dir=str(root), nshards=8,
                           shard_capacity=128)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def submit_compile(server, source):
    """One simulated client: own connection, one request, wall timing."""
    address = server.server_address
    start = time.perf_counter()
    with ServiceClient(host=address[0], port=address[1]) as client:
        response = client.compile(source)
    response["client_wall_ms"] = (time.perf_counter() - start) * 1e3
    return response


def test_service_load(server):
    # -- phase 1: coalescing burst on one fresh fingerprint ---------------
    burst_source = cold_variant(999983)
    # One thread per burst client: every request must be in flight while
    # the leader compiles, otherwise late arrivals are plain hot hits
    # and the coalesce rate measures the pool, not single-flight.
    with ThreadPoolExecutor(max_workers=BURST_CLIENTS) as pool:
        burst = list(pool.map(
            lambda _: submit_compile(server, burst_source),
            range(BURST_CLIENTS),
        ))
    assert all(r["ok"] for r in burst)
    burst_kinds = [r["cache"] for r in burst]
    coalesce_rate = burst_kinds.count("coalesced") / len(burst_kinds)
    assert burst_kinds.count("cold") == 1
    # The gate: at least half the identical concurrent requests rode the
    # leader's compile instead of compiling (or even loading) themselves.
    assert coalesce_rate >= 0.5, f"coalesce rate {coalesce_rate:.0%}"
    assert len({r["artifact_sha256"] for r in burst}) == 1

    # -- phase 2: 90/10 hot/cold steady-state mix -------------------------
    rng = random.Random(20260808)
    hot_names = sorted(HOT_PROGRAMS)
    schedule = []
    cold_tag = 0
    for _ in range(TOTAL_CLIENTS):
        if rng.random() < HOT_FRACTION:
            schedule.append(("hot", rng.choice(hot_names)))
        else:
            schedule.append(("cold", cold_tag))
            cold_tag += 1
    # Pre-warm the hot set: one cold compile per hot program, so the
    # mixed phase measures steady-state hot hits, not first touches.
    for name in hot_names:
        warm = submit_compile(server, HOT_PROGRAMS[name])
        assert warm["ok"]

    def run_one(entry):
        kind, which = entry
        source = (HOT_PROGRAMS[which] if kind == "hot"
                  else cold_variant(which))
        response = submit_compile(server, source)
        response["expected"] = kind
        response["program"] = which
        return response

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        responses = list(pool.map(run_one, schedule))
    mixed_wall_s = time.perf_counter() - started

    # Gate: zero dropped or failed requests.
    assert len(responses) == TOTAL_CLIENTS
    failed = [r for r in responses if not r.get("ok")]
    assert failed == []

    hot_ms = [r["compile_ms"] for r in responses if r["expected"] == "hot"]
    cold_ms = [r["compile_ms"] for r in responses
               if r["expected"] == "cold" and r["cache"] == "cold"]
    # Every expected-hot request was served without compiling.
    assert all(r["cache"] == "hot" for r in responses
               if r["expected"] == "hot")
    assert hot_ms and cold_ms
    hot_p99 = percentile(hot_ms, 99)
    cold_p50 = percentile(cold_ms, 50)
    # Gate: the paper's compile-economics claim, service edition — the
    # hot path is not merely faster, it is an order of magnitude faster
    # at its *tail* than the cold path at its *median*.
    assert hot_p99 * 10 <= cold_p50, (
        f"hot p99 {hot_p99:.3f} ms vs cold p50 {cold_p50:.3f} ms"
    )

    # -- phase 3: byte-identity audit vs single-client compiles -----------
    reference = {
        name: sha256_text(
            compile_program(source, CompilerOptions()).source
        )
        for name, source in HOT_PROGRAMS.items()
    }
    mismatched = [
        (r["program"], r["artifact_sha256"])
        for r in responses
        if r["expected"] == "hot"
        and r["artifact_sha256"] != reference[r["program"]]
    ]
    assert mismatched == []
    # Cold compiles of one tag must agree with an in-process compile too.
    probe_tag = next(w for k, w in schedule if k == "cold")
    local_sha = sha256_text(
        compile_program(cold_variant(probe_tag), CompilerOptions()).source
    )
    served = [r for r in responses
              if r["expected"] == "cold" and r["program"] == probe_tag]
    assert all(r["artifact_sha256"] == local_sha for r in served)

    stats = None
    address = server.server_address
    with ServiceClient(host=address[0], port=address[1]) as client:
        stats = client.stats()

    wall_ms = [r["client_wall_ms"] for r in responses]
    emit(f"service load: {TOTAL_CLIENTS} clients "
         f"({WORKERS} in flight), {mixed_wall_s:.1f} s wall, "
         f"{TOTAL_CLIENTS / mixed_wall_s:.0f} req/s")
    emit(f"burst: {BURST_CLIENTS} clients, 1 compile, "
         f"coalesce rate {coalesce_rate:.0%}")
    emit(f"hot p99 {hot_p99:.3f} ms vs cold p50 {cold_p50:.3f} ms "
         f"({cold_p50 / max(hot_p99, 1e-9):.0f}x)")

    record_service("load", {
        "clients": TOTAL_CLIENTS,
        "workers": WORKERS,
        "hot_fraction": HOT_FRACTION,
        "wall_s": round(mixed_wall_s, 3),
        "requests_per_s": round(TOTAL_CLIENTS / mixed_wall_s, 1),
        "failed_requests": len(failed),
        "burst": {
            "clients": BURST_CLIENTS,
            "cold": burst_kinds.count("cold"),
            "coalesced": burst_kinds.count("coalesced"),
            "hot": burst_kinds.count("hot"),
            "coalesce_rate": round(coalesce_rate, 4),
        },
        "latency_ms": {
            "hot_p50": round(percentile(hot_ms, 50), 4),
            "hot_p99": round(hot_p99, 4),
            "cold_p50": round(cold_p50, 3),
            "cold_p99": round(percentile(cold_ms, 99), 3),
            "client_wall_p50": round(percentile(wall_ms, 50), 3),
            "client_wall_p99": round(percentile(wall_ms, 99), 3),
            "hot_p99_vs_cold_p50": round(cold_p50 / max(hot_p99, 1e-9), 1),
        },
        "server": {
            "store_totals": stats["store"]["totals"],
            "single_flight": stats["single_flight"],
            "queue_depth_peak": stats["queue_depth"]["peak"],
            "counters": stats["counters"],
        },
        "byte_identical_vs_single_client": True,
    })
