"""Cold-compile wall-clock vs the recorded seed baseline.

The set-engine performance work (profiler-driven: GCD/interval emptiness
pre-tests, corner-witness nonemptiness probe, syntactic redundancy fast
paths, O(n) normalize, eager subsumption pruning, incremental redundancy
removal, lazy interned hashes, and the bounds-propagation presolve with
its disjointness pretest) targets *cold* compile latency — a fresh
process with empty memoization caches, which is what an interactive user
pays.

``SEED_BASELINE_S`` records the cold compile times measured at the
pre-overhaul seed commit on the CI-class container this suite runs on;
``PRESOLVE_BASELINE_S`` the times measured just before the presolve +
disjointness-pretest round landed.  The test recompiles every benchmark
program cold under the set-op profiler, writes the comparison (including
the per-program presolve/fast-path counters) to ``BENCH_compile.json``,
and asserts three floors:

* jacobi must stay at least ``JACOBI_FLOOR``x faster than its seed time
  *and* under ``JACOBI_ABS_S`` seconds absolute;
* sp_like and redblack must each stay at least ``PRESOLVE_FLOOR``x
  faster than their pre-presolve baselines.

Floors are deliberately set several times below the measured speedups
(jacobi measures ~35x against a 15x floor) so CI noise does not flake,
while a real algorithmic regression — losing the disjointness pretest
alone roughly quadruples jacobi and tenfolds redblack — still trips
them.
"""

import gc
import time

from repro import compile_program
from repro.cache.manager import reset_caches
from repro.core.options import CompilerOptions
from repro.isets.profile import profiled
from repro.programs import (
    erlebacher,
    gauss,
    jacobi,
    redblack,
    sp_like,
    tomcatv,
)

from conftest import emit, record_compile

#: Cold compile seconds at the pre-overhaul seed commit (measured on the
#: reference container, caching="on" with empty caches — the same
#: configuration this test runs).
SEED_BASELINE_S = {
    "jacobi": 89.26,
    "tomcatv": 2.19,
    "erlebacher": 1.35,
    "gauss": 0.10,
    "redblack": 43.96,
    "sp_like": 87.52,
}

#: Cold compile seconds measured immediately before the presolve +
#: disjointness-pretest round, same container.
PRESOLVE_BASELINE_S = {
    "jacobi": 16.882,
    "redblack": 7.227,
    "sp_like": 13.959,
}

#: Asserted floors (see module docstring).
JACOBI_FLOOR = 15.0
JACOBI_ABS_S = 5.0
PRESOLVE_FLOOR = 1.5

#: Per-program profiler events worth tracking release-over-release.
_TRACKED_EVENTS = (
    "presolve.empty",
    "presolve.implied",
    "presolve.pinned",
    "presolve.pin_eliminated",
    "presolve.rounds",
    "presolve.tightened",
    "fastpath.disjoint_pretest",
    "fastpath.batched_syntactic",
    "fastpath.witness_cache_hit",
    "fastpath.corner_nonempty",
    "fastpath.interval_empty",
    "witness.stored",
    "witness.evicted",
)


def _sources():
    return {
        "gauss": gauss(),
        "tomcatv": tomcatv(),
        "erlebacher": erlebacher(),
        "redblack": redblack(),
        "jacobi": jacobi(),
        "sp_like": sp_like(),
    }


def test_cold_compile_speedup_floor():
    rows = {}
    for name, source in _sources().items():
        # Timed compile runs unprofiled — the floors gate what a user
        # pays, and the per-record profiler overhead is material on the
        # normalize-heavy programs.  A second cold compile under the
        # profiler collects the fast-path counters.  Garbage from the
        # earlier programs is collected and frozen before the clock
        # starts: without it the later programs in the loop pay up to a
        # second of collector sweeps over dead objects they never
        # allocated, which is allocator noise, not compile cost.
        reset_caches()
        gc.collect()
        gc.freeze()
        try:
            start = time.perf_counter()
            compiled = compile_program(source, CompilerOptions())
            elapsed = time.perf_counter() - start
        finally:
            gc.unfreeze()
        assert not compiled.cache_hit, f"{name}: cold compile was warm"
        reset_caches()
        with profiled() as prof:
            compile_program(source, CompilerOptions())
        events = prof.snapshot()["events"]
        seed = SEED_BASELINE_S[name]
        rows[name] = {
            "cold_s": round(elapsed, 3),
            "seed_s": seed,
            "speedup": round(seed / elapsed, 2),
            "set_ops": {
                key: events[key] for key in _TRACKED_EVENTS if key in events
            },
        }
        emit(
            f"{name:12s} cold {elapsed:7.2f}s  seed {seed:7.2f}s  "
            f"{seed / elapsed:5.1f}x"
        )
    record_compile(
        "cold_compile",
        {
            "programs": rows,
            "jacobi_floor": JACOBI_FLOOR,
            "jacobi_abs_s": JACOBI_ABS_S,
            "presolve_floor": PRESOLVE_FLOOR,
            "presolve_baseline_s": PRESOLVE_BASELINE_S,
        },
    )
    jacobi_speedup = rows["jacobi"]["speedup"]
    assert jacobi_speedup >= JACOBI_FLOOR, (
        f"jacobi cold compile regressed: {jacobi_speedup:.1f}x vs the "
        f"asserted {JACOBI_FLOOR:.0f}x floor over the seed baseline "
        f"({rows['jacobi']['cold_s']:.1f}s vs {SEED_BASELINE_S['jacobi']}s)"
    )
    assert rows["jacobi"]["cold_s"] < JACOBI_ABS_S, (
        f"jacobi cold compile {rows['jacobi']['cold_s']:.1f}s breached the "
        f"{JACOBI_ABS_S:.0f}s absolute budget"
    )
    for name in ("sp_like", "redblack"):
        baseline = PRESOLVE_BASELINE_S[name]
        ratio = baseline / rows[name]["cold_s"]
        assert ratio >= PRESOLVE_FLOOR, (
            f"{name} cold compile regressed: {ratio:.2f}x vs the asserted "
            f"{PRESOLVE_FLOOR:.1f}x floor over the pre-presolve baseline "
            f"({rows[name]['cold_s']:.1f}s vs {baseline}s)"
        )


def test_gist_batching_counters():
    """Record the fast-path counter deltas to ``BENCH_compile.json``.

    ``incremental_redundancies`` screens fresh constraints with one
    per-conjunct syntactic index instead of a per-constraint context
    rescan, ``_quick_feasibility`` reuses nonemptiness witnesses across
    conjuncts of the same coefficient shape, and ``disjoint_subtract``
    skips whole subtract pairs via the presolve disjointness pretest.
    All three fast paths must demonstrably fire on a real compile — a
    silent regression to the slow path would not change any result, only
    the compile time, so the counters are the regression test.  jacobi
    is the probe program: it exercises the largest disjoint
    decompositions of the suite.
    """
    reset_caches()
    with profiled() as prof:
        start = time.perf_counter()
        compile_program(jacobi(), CompilerOptions())
        elapsed = time.perf_counter() - start
    snapshot = prof.snapshot()
    events = snapshot["events"]
    incr = snapshot["ops"].get("incremental_redundancies", {})
    payload = {
        "program": "jacobi",
        "cold_s": round(elapsed, 3),
        "incremental_redundancies_calls": incr.get("calls", 0),
        "incremental_redundancies_s": incr.get("seconds", 0.0),
        "batched_syntactic_hits": events.get(
            "fastpath.batched_syntactic", 0
        ),
        "residual_rescan_hits": events.get(
            "fastpath.syntactic_redundant", 0
        ),
        "witness_cache_hits": events.get("fastpath.witness_cache_hit", 0),
        "corner_probe_hits": events.get("fastpath.corner_nonempty", 0),
        "disjoint_pretest_hits": events.get(
            "fastpath.disjoint_pretest", 0
        ),
        "presolve_empties": events.get("presolve.empty", 0),
        "presolve_implied": events.get("presolve.implied", 0),
        "presolve_pinned": events.get("presolve.pinned", 0),
    }
    emit(
        f"fast paths: {payload['disjoint_pretest_hits']} disjoint "
        f"pretests, {payload['batched_syntactic_hits']} batched vs "
        f"{payload['residual_rescan_hits']} rescan hits, "
        f"{payload['witness_cache_hits']} witness reuses in "
        f"{elapsed:.2f}s"
    )
    record_compile("set_engine_batching", payload)
    assert payload["batched_syntactic_hits"] > 1_000, (
        "the batched syntactic screen stopped firing — gisting has "
        "fallen back to per-constraint context rescans"
    )
    assert payload["witness_cache_hits"] > 0, (
        "the shape-keyed witness cache never hit on a real compile"
    )
    assert payload["disjoint_pretest_hits"] > 1_000, (
        "the presolve disjointness pretest stopped firing — subtraction "
        "has fallen back to full gist-and-negate on disjoint pairs"
    )
