"""Cold-compile wall-clock vs the recorded seed baseline.

The set-engine performance overhaul (profiler-driven: GCD/interval
emptiness pre-tests, corner-witness nonemptiness probe, syntactic
redundancy fast paths, O(n) normalize, eager subsumption pruning,
incremental redundancy removal, lazy interned hashes) targets *cold*
compile latency — a fresh process with empty memoization caches, which
is what an interactive user pays.

``SEED_BASELINE_S`` records the cold compile times measured at the
pre-overhaul seed commit on the CI-class container this suite runs on.
The test recompiles every benchmark program cold, writes the comparison
to ``BENCH_compile.json``, and **asserts the jacobi floor**: jacobi must
stay at least ``JACOBI_FLOOR``× faster than its seed time.  A regression
past the floor fails benchmark-smoke in CI.

Absolute times move with hardware; the floor is deliberately set at 5×
against a measured ~7× so that CI noise does not flake, while a real
algorithmic regression (losing any one of the major fast paths drops
the speedup below 3×) still trips it.
"""

import time

from repro import compile_program
from repro.cache.manager import reset_caches
from repro.core.options import CompilerOptions
from repro.programs import (
    erlebacher,
    gauss,
    jacobi,
    redblack,
    sp_like,
    tomcatv,
)

from conftest import emit, record_compile

#: Cold compile seconds at the pre-overhaul seed commit (measured on the
#: reference container, caching="on" with empty caches — the same
#: configuration this test runs).
SEED_BASELINE_S = {
    "jacobi": 89.26,
    "tomcatv": 2.19,
    "erlebacher": 1.35,
    "gauss": 0.10,
    "redblack": 43.96,
    "sp_like": 87.52,
}

#: Asserted floor: jacobi cold compile must stay at least this many
#: times faster than the seed baseline.
JACOBI_FLOOR = 5.0


def _sources():
    return {
        "gauss": gauss(),
        "tomcatv": tomcatv(),
        "erlebacher": erlebacher(),
        "redblack": redblack(),
        "jacobi": jacobi(),
        "sp_like": sp_like(),
    }


def test_cold_compile_speedup_floor():
    rows = {}
    for name, source in _sources().items():
        reset_caches()
        start = time.perf_counter()
        compiled = compile_program(source, CompilerOptions())
        elapsed = time.perf_counter() - start
        assert not compiled.cache_hit, f"{name}: cold compile was warm"
        seed = SEED_BASELINE_S[name]
        rows[name] = {
            "cold_s": round(elapsed, 3),
            "seed_s": seed,
            "speedup": round(seed / elapsed, 2),
        }
        emit(
            f"{name:12s} cold {elapsed:7.2f}s  seed {seed:7.2f}s  "
            f"{seed / elapsed:5.1f}x"
        )
    record_compile(
        "cold_compile",
        {"programs": rows, "jacobi_floor": JACOBI_FLOOR},
    )
    jacobi_speedup = rows["jacobi"]["speedup"]
    assert jacobi_speedup >= JACOBI_FLOOR, (
        f"jacobi cold compile regressed: {jacobi_speedup:.1f}x vs the "
        f"asserted {JACOBI_FLOOR:.0f}x floor over the seed baseline "
        f"({rows['jacobi']['cold_s']:.1f}s vs {SEED_BASELINE_S['jacobi']}s)"
    )


def test_gist_batching_counters():
    """Record the batched-gisting delta to ``BENCH_compile.json``.

    ``incremental_redundancies`` screens fresh constraints with one
    per-conjunct syntactic index instead of a per-constraint context
    rescan, and ``_quick_feasibility`` reuses nonemptiness witnesses
    across conjuncts of the same coefficient shape.  Both fast paths
    must demonstrably fire on a real compile — a silent regression to
    the rescan path would not change any result, only the compile time,
    so the counters are the regression test.
    """
    from repro.isets.profile import profiled

    reset_caches()
    with profiled() as prof:
        start = time.perf_counter()
        compile_program(redblack(), CompilerOptions())
        elapsed = time.perf_counter() - start
    snapshot = prof.snapshot()
    events = snapshot["events"]
    incr = snapshot["ops"].get("incremental_redundancies", {})
    payload = {
        "program": "redblack",
        "cold_s": round(elapsed, 3),
        "incremental_redundancies_calls": incr.get("calls", 0),
        "incremental_redundancies_s": incr.get("seconds", 0.0),
        "batched_syntactic_hits": events.get(
            "fastpath.batched_syntactic", 0
        ),
        "residual_rescan_hits": events.get(
            "fastpath.syntactic_redundant", 0
        ),
        "witness_cache_hits": events.get("fastpath.witness_cache_hit", 0),
        "corner_probe_hits": events.get("fastpath.corner_nonempty", 0),
    }
    emit(
        f"gist batching: {payload['batched_syntactic_hits']} batched vs "
        f"{payload['residual_rescan_hits']} rescan hits, "
        f"{payload['witness_cache_hits']} witness reuses in "
        f"{elapsed:.2f}s"
    )
    record_compile("set_engine_batching", payload)
    assert payload["batched_syntactic_hits"] > 1_000, (
        "the batched syntactic screen stopped firing — gisting has "
        "fallen back to per-constraint context rescans"
    )
    assert payload["witness_cache_hits"] > 0, (
        "the shape-keyed witness cache never hit on a real compile"
    )
