"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it prints the
reproduced rows/series (prefixed ``[repro]``) and asserts the qualitative
*shape* the paper reports — who wins, roughly by how much, where behaviour
changes.  Absolute numbers differ: the substrate is a simulated machine,
not the authors' IBM SP-2.
"""

import json
import platform
import sys
from pathlib import Path

import pytest

from repro import CostModel, compile_program, run_compiled

BENCH_DATAPLANE_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_dataplane.json"
)
BENCH_KERNELS_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
)
BENCH_SERVICE_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_service.json"
)
BENCH_COMPILE_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_compile.json"
)
BENCH_TASKGRAPH_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_taskgraph.json"
)
BENCH_SERVICE_POOL_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_service_pool.json"
)


def emit(line: str = "") -> None:
    """Print a reproduction row (shown with -s; captured otherwise)."""
    print(f"[repro] {line}", file=sys.stderr)


def _record_json(path: Path, generated_by: str, section: str,
                 payload) -> None:
    """Read-modify-write one section of a benchmark JSON file."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data.setdefault("meta", {}).update(
        {
            "generated_by": generated_by,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
    )
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def record_dataplane(section: str, payload) -> None:
    """Read-modify-write one section of ``BENCH_dataplane.json``."""
    _record_json(
        BENCH_DATAPLANE_PATH,
        "benchmarks (dataplane + fig7 measured runs)",
        section,
        payload,
    )


def record_kernels(section: str, payload) -> None:
    """Read-modify-write one section of ``BENCH_kernels.json``."""
    _record_json(
        BENCH_KERNELS_PATH,
        "benchmarks (compute plane: kernels vs scalar A/B)",
        section,
        payload,
    )


def record_service(section: str, payload) -> None:
    """Read-modify-write one section of ``BENCH_service.json``."""
    _record_json(
        BENCH_SERVICE_PATH,
        "benchmarks (compile service load harness)",
        section,
        payload,
    )


def record_compile(section: str, payload) -> None:
    """Read-modify-write one section of ``BENCH_compile.json``."""
    _record_json(
        BENCH_COMPILE_PATH,
        "benchmarks (cold compile time vs recorded seed baseline)",
        section,
        payload,
    )


def record_taskgraph(section: str, payload) -> None:
    """Read-modify-write one section of ``BENCH_taskgraph.json``."""
    _record_json(
        BENCH_TASKGRAPH_PATH,
        "benchmarks (taskgraph backend: comm/compute overlap vs threads)",
        section,
        payload,
    )


def percentile_of(samples, p):
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


def record_service_pool(section: str, payload) -> None:
    """Read-modify-write one section of ``BENCH_service_pool.json``."""
    _record_json(
        BENCH_SERVICE_POOL_PATH,
        "benchmarks (supervised worker pool: throughput, chaos, drain)",
        section,
        payload,
    )


def speedup_series(source, params, proc_counts, options=None,
                   cost_model=None):
    """Compile once, run at each processor count, return speedup dict.

    The serial baseline is the total statement work of the run under the
    cost model's FLOP rate (equivalent to a 1-processor execution without
    any communication or replication overhead).
    """
    compiled = compile_program(source, options)
    model = cost_model or CostModel()
    times = {}
    serial = None
    stats = {}
    for p in proc_counts:
        outcome = run_compiled(
            compiled, params=params, nprocs=p, cost_model=model,
            validate=False,
        )
        times[p] = outcome.predicted_time
        stats[p] = outcome.stats
        serial = outcome.serial_time if serial is None else min(
            serial, outcome.serial_time
        )
    speedups = {p: serial / times[p] for p in proc_counts}
    return compiled, speedups, times, stats


@pytest.fixture
def repro_print():
    return emit
