"""Figure 7 reproduction: speedups of the generated code.

The paper's Figure 7 shows IBM SP-2 speedups for three codes; the *shapes*
we reproduce on the simulated machine:

* (a) TOMCATV, (BLOCK,*): moderate speedups at the small problem size —
  the two global max-reductions per step bound scaling — and clearly
  better scaling at the large size;
* (b) ERLEBACHER, (*,*,BLOCK): limited, sub-linear speedup (z-pipeline
  with many small messages plus a broadcast-like panel read), improving
  with problem size;
* (c) JACOBI, (BLOCK,BLOCK) on 2x(P/2): near-linear scaling.

Sizes are scaled down from the paper's (Python executes every statement
interpretively) but keep the same small-vs-large relationships.
"""

import os

import pytest

from repro import compile_program, run_compiled
from repro.programs import erlebacher, jacobi, tomcatv

from conftest import emit, record_dataplane, speedup_series

PROCS = (1, 2, 4, 8, 16)
PROCS_2D = (2, 4, 8, 16)  # 2 x (nprocs/2) grids need an even count


def _report(name, series):
    emit(f"{name}: " + "  ".join(
        f"p={p}:{s:.2f}x" for p, s in sorted(series.items())
    ))


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_tomcatv_small_vs_large(benchmark):
    def run():
        _, small, _, _ = speedup_series(
            tomcatv(), {"n": 48, "niter": 2}, PROCS
        )
        _, large, _, _ = speedup_series(
            tomcatv(), {"n": 144, "niter": 2}, PROCS
        )
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    _report("TOMCATV small (48^2)", small)
    _report("TOMCATV large (144^2)", large)

    # Moderate speedups at the small size...
    assert 1.2 < small[16] < 12.0
    # ...and the large problem scales distinctly better (paper: "for the
    # larger problem, we see that the scaling improves").
    assert large[16] > 1.25 * small[16]
    assert large[16] > 6.0
    # Speedup grows monotonically with processors at the large size.
    values = [large[p] for p in PROCS]
    assert values == sorted(values)


@pytest.mark.benchmark(group="fig7b")
def test_fig7b_erlebacher_pipeline_bound(benchmark):
    def run():
        _, small, _, stats = speedup_series(
            erlebacher(), {"n": 10, "nz": 24, "niter": 2}, PROCS
        )
        _, large, _, _ = speedup_series(
            erlebacher(), {"n": 20, "nz": 48, "niter": 2}, PROCS
        )
        return small, large, stats

    small, large, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _report("ERLEBACHER small (10.10.24)", small)
    _report("ERLEBACHER large (20.20.48)", large)
    emit(f"  messages at p=8 (small): {stats[8].total_messages} "
         f"(pipeline: many small messages)")

    # Clearly sub-linear: the pipeline and broadcast dominate.
    assert small[8] < 5.0
    assert large[8] < 7.0
    # Larger problems scale better (paper: "fairly good scaling in
    # performance for the larger problem size").
    assert large[8] >= small[8]
    # The pipeline generates at least one message per (iteration, boundary).
    assert stats[8].total_messages >= 7


@pytest.mark.benchmark(group="fig7c")
def test_fig7c_jacobi_near_linear(benchmark):
    def run():
        _, series, _, stats = speedup_series(
            jacobi(), {"n": 192, "niter": 2}, PROCS_2D
        )
        return series, stats

    series, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    _report("JACOBI (192^2, BLOCK x BLOCK)", series)

    # Paper: "the speedup scales linearly as should be expected for this
    # simple, regular stencil code."  We require near-linear efficiency
    # (the paper ran far larger problems per processor; at this scaled-down
    # size the perimeter-to-area ratio at p=16 already costs a few percent).
    for p in PROCS_2D:
        efficiency = series[p] / p
        floor = 0.75 if p <= 4 else 0.55
        assert efficiency > floor, f"p={p}: efficiency {efficiency:.2f}"
    assert series[16] > 8.0
    values = [series[p] for p in PROCS_2D]
    assert values == sorted(values)


@pytest.mark.benchmark(group="fig7")
def test_fig7_relative_difficulty(benchmark):
    """Cross-code shape: JACOBI scales best, ERLEBACHER worst (paper's
    three panels side by side)."""
    def run():
        _, jac, _, _ = speedup_series(
            jacobi(), {"n": 128, "niter": 2}, (8,)
        )
        _, tom, _, _ = speedup_series(
            tomcatv(), {"n": 128, "niter": 2}, (8,)
        )
        _, erl, _, _ = speedup_series(
            erlebacher(), {"n": 12, "nz": 32, "niter": 2}, (8,)
        )
        return jac[8], tom[8], erl[8]

    jac8, tom8, erl8 = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"speedups at p=8: JACOBI {jac8:.2f}  TOMCATV {tom8:.2f}  "
         f"ERLEBACHER {erl8:.2f}")
    assert jac8 > erl8
    assert tom8 > erl8


# ---------------------------------------------------------------------------
# Opt-in: measured mp wall-clock next to the LogGP predictions
# ---------------------------------------------------------------------------

MEASURED_ENV = "REPRO_FIG7_MEASURED"


@pytest.mark.skipif(
    not os.environ.get(MEASURED_ENV),
    reason=f"set {MEASURED_ENV}=1 for the measured multiprocess run",
)
@pytest.mark.benchmark(group="fig7-measured")
def test_fig7_measured_mp_wallclock(benchmark):
    """Re-run the Figure 7 codes on the multiprocess backend and record
    each rank count's *measured* wall-clock (slowest rank, from
    ``RankTiming``) next to the LogGP-predicted time in
    ``BENCH_dataplane.json``.  Opt-in: real processes at up to 8 ranks
    plus the 2-D JACOBI compile make this far slower than the replay
    benchmarks above."""
    programs = {
        "tomcatv": (tomcatv(), {"n": 48, "niter": 2}, (1, 2, 4, 8)),
        "erlebacher": (
            erlebacher(), {"n": 12, "nz": 32, "niter": 2}, (1, 2, 4, 8)
        ),
        "jacobi": (jacobi(), {"n": 96, "niter": 2}, (2, 4, 8)),
    }

    def run():
        curves = {}
        for name, (source, params, procs) in programs.items():
            compiled = compile_program(source)
            curve = {}
            for p in procs:
                outcome = run_compiled(
                    compiled, params=params, nprocs=p,
                    backend="mp", validate=False,
                )
                curve[str(p)] = {
                    "measured_wall_s": outcome.max_rank_wall_s,
                    "predicted_loggp_s": outcome.predicted_time,
                    # Per-rank RankTiming detail: total wall and the
                    # share spent inside send/recv/collectives.
                    "ranks": [
                        {
                            "rank": t.rank,
                            "wall_s": t.wall_s,
                            "comm_wall_s": t.comm_wall_s,
                        }
                        for t in sorted(
                            outcome.timings, key=lambda t: t.rank
                        )
                    ],
                }
            curves[name] = {"params": params, "curve": curve}
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, entry in curves.items():
        for p, row in sorted(entry["curve"].items(), key=lambda kv: int(kv[0])):
            emit(
                f"{name:10s} p={p}: measured "
                f"{row['measured_wall_s'] * 1e3:8.2f} ms   LogGP "
                f"{row['predicted_loggp_s'] * 1e3:8.3f} ms"
            )
            assert row["measured_wall_s"] > 0.0
    record_dataplane("fig7_measured_mp", {"backend": "mp", "results": curves})
