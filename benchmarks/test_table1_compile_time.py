"""Table 1 reproduction: breakdown of compilation time.

The paper's Table 1 compiles SP with a fixed 2x2 processor array (SP-4),
SP with a symbolic ``2 x (nprocs/2)`` array (SP-sym), and TOMCATV with a
symbolic processor count, and reports per-phase percentages.  Its headline
claims, which we assert:

* no single set-framework phase dominates compilation;
* compiling for a *symbolic* number of processors costs about the same as
  for a fixed number (SP-sym was in fact slightly *faster* than SP-4);
* the integer-set machinery (communication generation + partitioning +
  code generation from sets) is a bounded fraction of total compile time
  (~25% for the set framework proper in the paper).
"""

import pytest

from repro import compile_program
from repro.programs import sp_like, tomcatv

from conftest import emit

# Keep the synthetic SP at a size that compiles in seconds, not minutes;
# the *ratios* between variants are what Table 1 is about.
SP_KW = dict(routines=3, nests_per_routine=2)


def _phase_table(compiled, title):
    emit(f"--- {title} ---")
    emit(compiled.phases.format_table())
    return dict(
        (name, seconds)
        for name, seconds, _pct in compiled.phases.report()
    )


def _compile_sp(symbolic):
    return compile_program(sp_like(symbolic_procs=symbolic, **SP_KW))


@pytest.mark.benchmark(group="table1")
def test_table1_sp_fixed_vs_symbolic(benchmark):
    compiled_sym = benchmark.pedantic(
        lambda: _compile_sp(True), rounds=1, iterations=1
    )
    compiled_fix = _compile_sp(False)

    t_sym = compiled_sym.phases.total_time()
    t_fix = compiled_fix.phases.total_time()
    _phase_table(compiled_fix, f"SP-4 (fixed 2x2): {t_fix:.1f}s total")
    _phase_table(
        compiled_sym, f"SP-sym (2 x nprocs/2): {t_sym:.1f}s total"
    )
    emit(f"symbolic/fixed compile-time ratio: {t_sym / t_fix:.2f}")

    # Paper: "there is no significant additional cost to compiling for a
    # symbolic number of processors vs. a known (fixed) number."
    assert t_sym <= 2.0 * t_fix, (
        f"symbolic-P compilation {t_sym:.1f}s vs fixed {t_fix:.1f}s"
    )

    # Paper: no phase is "especially dominant"; its largest single phase
    # (communication generation) is ~35%.  Allow some slack.
    for compiled, name in ((compiled_fix, "SP-4"), (compiled_sym, "SP-sym")):
        total = compiled.phases.total_time()
        for phase, seconds, _pct in compiled.phases.report():
            assert seconds <= 0.85 * total, (
                f"{name}: phase {phase} dominates "
                f"({seconds:.1f}s of {total:.1f}s)"
            )


@pytest.mark.benchmark(group="table1")
def test_table1_tomcatv_symbolic(benchmark):
    compiled = benchmark.pedantic(
        lambda: compile_program(tomcatv()), rounds=1, iterations=1
    )
    total = compiled.phases.total_time()
    phases = _phase_table(compiled, f"TOMCATV-sym: {total:.1f}s total")

    set_framework = sum(
        seconds
        for name, seconds in phases.items()
        if name in (
            "partitioning", "communication_generation", "comm_placement",
            "check_contiguous", "active_vp", "comm_outer_iters",
        )
    )
    emit(
        f"set-framework analysis share: "
        f"{100 * set_framework / total:.0f}% of compile time"
    )
    # Paper: the set representation "is not a dominant factor in compile
    # times" — codegen and other phases take the rest.
    assert set_framework < total


@pytest.mark.benchmark(group="table1")
def test_phase_breakdown_is_consistent_across_codes(benchmark):
    """Paper: 'the breakdown of compilation time for them is remarkably
    consistent' — every code spends a nonzero share in each major phase."""
    compiled = benchmark.pedantic(
        lambda: compile_program(sp_like(routines=2, nests_per_routine=2)),
        rounds=1, iterations=1,
    )
    report = dict(
        (name, seconds)
        for name, seconds, _pct in compiled.phases.report()
    )
    for phase in ("partitioning", "communication_generation", "codegen"):
        assert report.get(phase, 0.0) > 0.0, f"phase {phase} missing"
