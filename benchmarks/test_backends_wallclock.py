"""Measured wall-clock per execution backend (→ ``BENCH_backends.json``).

Every other benchmark in this directory reports LogGP *replay* times; this
one reports **measured** wall-clock from the execution backends — the
``mp`` backend in particular runs one OS process per rank, so its numbers
reflect real inter-process data movement.  Results are recorded in
``BENCH_backends.json`` at the repository root so future PRs have a
performance trajectory to compare against:

* a Jacobi-style kernel per backend and rank count, with the measured
  wall-clock next to the LogGP-predicted time;
* an in-place-vs-copy A/B (§3.3) and a split-vs-unsplit A/B (Figure 4)
  on the multiprocess backend, where the copy/overlap effects those
  optimizations target are physically real.

Assertions stay qualitative (everything ran, timings recorded); absolute
times are machine-dependent and only logged.
"""

import json
import platform
import sys
from pathlib import Path

import pytest

from repro import CompilerOptions, compile_program, run_compiled

from conftest import emit

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_backends.json"

JACOBI_STYLE = """
program jacobi1d
  parameter n
  parameter niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 0.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 2, n - 1
      a(i) = 0.5 * (b(i-1) + b(i+1))
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""

PARAMS = {"n": 512, "niter": 4}
BACKENDS = ("threads", "mp", "inproc-seq")
RANKS = (1, 2, 4)


def _record(section: str, payload) -> None:
    """Read-modify-write one section of BENCH_backends.json."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data.setdefault("meta", {}).update(
        {
            "generated_by": "benchmarks/test_backends_wallclock.py",
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
    )
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="backends")
def test_backend_wallclock_jacobi_style(benchmark):
    compiled = compile_program(JACOBI_STYLE)

    def run():
        rows = {}
        for backend in BACKENDS:
            rows[backend] = {}
            for nprocs in RANKS:
                outcome = run_compiled(
                    compiled, params=PARAMS, nprocs=nprocs,
                    backend=backend, validate=False,
                )
                rows[backend][str(nprocs)] = {
                    "wall_s": outcome.max_rank_wall_s,
                    "launch_wall_s": outcome.launch_wall_s,
                    "predicted_loggp_s": outcome.predicted_time,
                    "messages": outcome.stats.total_messages,
                    "bytes": outcome.stats.total_bytes,
                }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for backend, by_procs in rows.items():
        for nprocs, row in by_procs.items():
            emit(
                f"{backend:10s} p={nprocs}: measured "
                f"{row['wall_s'] * 1e3:8.2f} ms   LogGP-predicted "
                f"{row['predicted_loggp_s'] * 1e3:8.3f} ms"
            )
            assert row["wall_s"] > 0.0
    _record(
        "jacobi_style",
        {"params": PARAMS, "kernel": "jacobi1d", "results": rows},
    )


@pytest.mark.benchmark(group="backends")
def test_mp_ab_inplace_and_split(benchmark):
    """In-place-vs-copy and split-vs-unsplit measured A/Bs on ``mp``."""

    def run():
        ab = {}
        variants = {
            "inplace": (
                CompilerOptions(inplace=True),
                CompilerOptions(inplace=False),
            ),
            "loop_split": (
                CompilerOptions(loop_split=True),
                CompilerOptions(loop_split=False),
            ),
        }
        for label, (on_opts, off_opts) in variants.items():
            pair = {}
            for state, options in (("on", on_opts), ("off", off_opts)):
                compiled = compile_program(JACOBI_STYLE, options)
                outcome = run_compiled(
                    compiled, params=PARAMS, nprocs=4,
                    backend="mp", validate=False,
                )
                pair[state] = {
                    "wall_s": outcome.max_rank_wall_s,
                    "predicted_loggp_s": outcome.predicted_time,
                    "copies": outcome.stats.total_copies,
                    "checks": outcome.stats.total_checks,
                }
            ab[label] = pair
        return ab

    ab = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, pair in ab.items():
        emit(
            f"mp A/B {label}: on {pair['on']['wall_s'] * 1e3:.2f} ms "
            f"vs off {pair['off']['wall_s'] * 1e3:.2f} ms "
            f"(copies {pair['on']['copies']} vs {pair['off']['copies']})"
        )
    # §3.3: enabling in-place recognition must not increase copied bytes.
    assert ab["inplace"]["on"]["copies"] <= ab["inplace"]["off"]["copies"]
    _record("mp_ab", {"params": PARAMS, "nprocs": 4, "results": ab})
