"""Taskgraph backend overlap benchmark (→ ``BENCH_taskgraph.json``).

The wide-halo Jacobi program interleaves a communication-heavy stencil
(two-deep halo of ``v`` per iteration) with an independent, purely local
Jacobi smoother on a second template.  The ``threads`` backend executes
each rank in program order, so every rank sits in ``recv`` for the full
simulated link latency before touching the smoother; the ``taskgraph``
scheduler knows the smoother units have no dependence path to the halo
exchange and runs them while the messages are in flight.

Recorded per latency cell: measured wall-clock for both backends
(min over laps after a warmup), the overlap ratio, bitwise identity of
the final arrays, and the scheduler counters.  The headline assertion is
the acceptance bar for the backend: at least one latency cell shows a
>= 1.2x wall-clock improvement over ``threads``, with bitwise-identical
results everywhere.
"""

import numpy as np
import pytest

from repro import compile_program
from repro.programs import widehalo
from repro.runtime import RuntimeOptions, get_backend
from repro.runtime.harness import build_launch_spec

from conftest import emit, record_taskgraph

import time

NPROCS = 4
PARAMS = {"n": 64, "m": 2048, "niter": 8}
LATENCIES = (0.02, 0.03)
LAPS = 3  # after one warmup lap


def _run(backend_name, compiled, latency, laps):
    options = RuntimeOptions(comm_latency_s=latency)
    spec = build_launch_spec(compiled, dict(PARAMS), NPROCS, options)
    backend = get_backend(backend_name)
    backend.launch(spec)  # warmup: plan/code caches, allocator, pages
    walls = []
    result = None
    for _ in range(laps):
        start = time.perf_counter()
        result = backend.launch(spec)
        walls.append(time.perf_counter() - start)
    return walls, result


def _rank_arrays(result):
    return {
        (rank_result.rank, name): array
        for rank_result in result.results
        for name, array in rank_result.arrays.items()
    }


@pytest.fixture(scope="module")
def compiled_widehalo():
    return compile_program(widehalo())


def test_overlap_vs_threads(compiled_widehalo):
    cells = []
    for latency in LATENCIES:
        threads_walls, threads_result = _run(
            "threads", compiled_widehalo, latency, LAPS
        )
        graph_walls, graph_result = _run(
            "taskgraph", compiled_widehalo, latency, LAPS
        )

        threads_arrays = _rank_arrays(threads_result)
        graph_arrays = _rank_arrays(graph_result)
        assert threads_arrays.keys() == graph_arrays.keys()
        for key in threads_arrays:
            assert np.array_equal(threads_arrays[key], graph_arrays[key]), (
                f"array {key} differs between threads and taskgraph "
                f"at latency {latency}"
            )

        ratio = min(threads_walls) / min(graph_walls)
        scheduler = dict(graph_result.scheduler or {})
        cells.append(
            {
                "comm_latency_s": latency,
                "threads_wall_s": round(min(threads_walls), 4),
                "taskgraph_wall_s": round(min(graph_walls), 4),
                "overlap_ratio": round(ratio, 3),
                "bitwise_identical": True,
                "threads_laps_s": [round(w, 4) for w in threads_walls],
                "taskgraph_laps_s": [round(w, 4) for w in graph_walls],
                "scheduler": {
                    key: scheduler.get(key)
                    for key in (
                        "workers", "steals", "parked_peak",
                        "critical_path_s", "plan_build_s",
                    )
                },
            }
        )
        emit(
            f"widehalo lat={latency}: threads={min(threads_walls):.3f}s "
            f"taskgraph={min(graph_walls):.3f}s ratio={ratio:.2f}x"
        )

    best = max(cell["overlap_ratio"] for cell in cells)
    record_taskgraph(
        "widehalo_overlap",
        {
            "program": "widehalo",
            "params": PARAMS,
            "nprocs": NPROCS,
            "laps": LAPS,
            "cells": cells,
            "best_overlap_ratio": best,
        },
    )
    assert best >= 1.2, (
        f"taskgraph should beat threads by >= 1.2x on the overlap "
        f"workload; best ratio was {best:.2f}x ({cells})"
    )
