"""Compute-plane microbenchmarks (→ ``BENCH_kernels.json``).

Measures the numpy strided-slice kernel plane against the interpreted
per-point scalar plane it replaces:

* **end-to-end A/B wall-clock** — the same program compiled twice, with
  ``CompilerOptions(compute="kernels")`` (default) and
  ``compute="scalar"``, run on the threads backend where the rank
  wall-clock is dominated by the compute plane.  The guard-free local
  portion of JACOBI and TOMCATV must come out at least 10x faster under
  kernels; every measured run is validated element-by-element against
  the serial reference interpreter (``validate=True``).
* **validation** — the kernel plane is checked element-identical on all
  three execution backends.

Both planes charge identical abstract work (``weight * trip_count``
once per kernel launch), so the LogGP replay — and every Figure 7
shape — is byte-identical between them; only the wall-clock moves.
Absolute times are machine-dependent; the recorded JSON gives future
PRs a trajectory, the assertions pin only the relative win.
"""

import statistics

import pytest

from repro import CompilerOptions, compile_program, run_compiled
from repro.programs import jacobi, tomcatv

from conftest import emit, record_kernels

# Small 1-D stencil with a fast compile, for the CI smoke path (the 2-D
# JACOBI compile is dominated by communication-set codegen and takes
# minutes cold).
JACOBI_1D = """
program jacobi1d
  parameter n
  parameter niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 0.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 2, n - 1
      a(i) = 0.5 * (b(i-1) + b(i+1))
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""

MODES = ("kernels", "scalar")


def _compile_ab(source):
    return {
        mode: compile_program(source, CompilerOptions(compute=mode))
        for mode in MODES
    }


def _report_counts(compiled):
    """(vectorized, fallback) statement counts from the kernel report."""
    report = compiled.module.kernel_report
    vec = sum(1 for _, _, status, _ in report if status == "vectorized")
    fb = sum(
        1 for _, _, status, _ in report
        if status in ("scalar", "piece-scalar")
    )
    return vec, fb


def _ab_rows(programs, rounds=3, backend="threads"):
    """Interleaved kernels/scalar A/B; every run validates vs serial.

    Interleaving repetitions (instead of best-of per mode back to back)
    keeps the median stable against scheduler noise, same as the
    data-plane microbench.
    """
    rows = {}
    for name, (source, params, nprocs) in programs.items():
        compiled = _compile_ab(source)
        walls = {mode: [] for mode in MODES}
        outcomes = {}
        for _ in range(rounds):
            for mode, prog in compiled.items():
                outcome = run_compiled(
                    prog, params=params, nprocs=nprocs,
                    backend=backend, validate=True,
                )
                walls[mode].append(outcome.max_rank_wall_s)
                outcomes[mode] = outcome
        vec, fb = _report_counts(compiled["kernels"])
        row = {
            "params": params,
            "nprocs": nprocs,
            "validated": True,
            "kernel_statements": vec,
            "fallback_statements": fb,
        }
        for mode in MODES:
            stats = outcomes[mode].stats
            row[mode] = {
                "wall_s": statistics.median(walls[mode]),
                "flops_vectorized": stats.total_flops_vectorized,
                "flops_scalar": stats.total_flops_scalar,
                "total_compute": stats.total_compute,
            }
        row["speedup"] = row["scalar"]["wall_s"] / row["kernels"]["wall_s"]
        rows[name] = row
    return rows


def _check_row(name, row):
    emit(
        f"compute A/B {name:10s}: kernels "
        f"{row['kernels']['wall_s'] * 1e3:8.2f} ms   scalar "
        f"{row['scalar']['wall_s'] * 1e3:8.2f} ms   "
        f"({row['speedup']:.1f}x, {row['kernel_statements']} kernel / "
        f"{row['fallback_statements']} fallback stmts)"
    )
    # The compute totals are identical by construction: the kernel plane
    # charges weight * trip_count once per launch.  Figure 7 shapes do
    # not depend on the compute plane.
    assert (
        row["kernels"]["total_compute"] == row["scalar"]["total_compute"]
    ), f"{name}: compute planes charged different work totals"
    assert row["scalar"]["flops_vectorized"] == 0.0
    assert row["kernels"]["flops_vectorized"] > 0.0


# ---------------------------------------------------------------------------
# Headline: >= 10x on the guard-free local portion of JACOBI / TOMCATV
# ---------------------------------------------------------------------------

AB_PROGRAMS = {
    "jacobi": (jacobi(), {"n": 256, "niter": 2}, 4),
    "tomcatv": (tomcatv(), {"n": 192, "niter": 2}, 4),
}


@pytest.mark.benchmark(group="kernels")
def test_kernels_vs_scalar_wallclock(benchmark):
    rows = benchmark.pedantic(
        lambda: _ab_rows(AB_PROGRAMS), rounds=1, iterations=1
    )
    for name, row in rows.items():
        _check_row(name, row)
        # The local portions of both codes are guard-free single-stride
        # nests; the strided-slice kernels must win big.
        assert row["speedup"] >= 10.0, (
            f"{name}: kernel plane only {row['speedup']:.1f}x faster"
        )
        # Nearly all work runs vectorized (boundary statements may not).
        vec_share = (
            row["kernels"]["flops_vectorized"]
            / row["kernels"]["total_compute"]
        )
        assert vec_share > 0.9, f"{name}: only {vec_share:.1%} vectorized"
    record_kernels(
        "kernels_vs_scalar",
        {"backend": "threads", "rounds": 3, "results": rows},
    )


# ---------------------------------------------------------------------------
# Validation: kernel plane element-identical on every backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["threads", "mp", "inproc-seq"])
def test_kernels_validates_everywhere(backend):
    compiled = compile_program(tomcatv())
    # validate=True raises on any element-wise mismatch vs the serial
    # interpreter.
    outcome = run_compiled(
        compiled, params={"n": 24, "niter": 2}, nprocs=2,
        backend=backend, validate=True,
    )
    assert outcome.stats.total_flops_vectorized > 0


def test_kernels_smoke():
    """Tiny always-fast A/B check; CI's benchmark-smoke job runs exactly
    this (both compute planes, validated, recorded)."""
    rows = _ab_rows(
        {"jacobi1d": (JACOBI_1D, {"n": 2048, "niter": 4}, 2)}, rounds=3
    )
    row = rows["jacobi1d"]
    _check_row("jacobi1d", row)
    assert row["kernel_statements"] > 0
    # No hard speedup floor here: CI runners are noisy and the smoke
    # size is small.  The headline assertion lives in the benchmark
    # above; the smoke only requires the kernel plane not to lose.
    assert row["speedup"] > 1.0
    record_kernels(
        "smoke_jacobi1d",
        {"backend": "threads", "rounds": 3, "results": rows},
    )
