"""Ablation benchmarks for the paper's individual optimizations.

Each test disables one optimization and measures the effect the paper
attributes to it:

* message **coalescing** (§3.2) reduces message count and eliminates
  redundant data;
* **in-place** communication (§3.3) removes pack/unpack copies for
  contiguous sets;
* **loop splitting** (§3.4) removes buffer-access checks (its
  communication/computation overlap also shows up in predicted time);
* **active-VP restriction** (§4.1) reduces fictitious-VP loop overhead for
  cyclic distributions (measured here as generated-code size: the
  unrestricted variant must enumerate and test more virtual processors).
"""

import pytest

from repro import CompilerOptions, CostModel, compile_program, run_compiled
from repro.programs import gauss

from conftest import emit

OVERLAP_STENCIL = """
program s
  parameter n, niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 1.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 3, n - 1
      a(i) = b(i-1) + b(i-2)
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""

COLUMN_SHIFT = """
program cs
  parameter n, niter
  real a(n,n), b(n,n)
  processors p(nprocs)
  template t(n,n)
  align a(i,j) with t(i,j)
  align b(i,j) with t(i,j)
  distribute t(*, block) onto p
  do i = 1, n
    do j = 1, n
      b(i,j) = i + j * 2
      a(i,j) = 0.0
    end do
  end do
  do iter = 1, niter
    do i = 1, n
      do j = 2, n
        a(i,j) = b(i,j-1)
      end do
    end do
    do i = 1, n
      do j = 2, n
        b(i,j) = a(i,j)
      end do
    end do
  end do
end
"""

PARAMS = {"n": 32, "niter": 3}


def _run(src, options, params=PARAMS, nprocs=4):
    compiled = compile_program(src, options)
    return run_compiled(compiled, params=params, nprocs=nprocs)


@pytest.mark.benchmark(group="ablation")
def test_ablation_coalescing(benchmark):
    base = benchmark.pedantic(
        lambda: _run(OVERLAP_STENCIL, CompilerOptions()),
        rounds=1, iterations=1,
    )
    separate = _run(OVERLAP_STENCIL, CompilerOptions(coalesce=False))
    emit(
        f"coalescing: msgs {base.stats.total_messages} vs "
        f"{separate.stats.total_messages}, bytes "
        f"{base.stats.total_bytes} vs {separate.stats.total_bytes}"
    )
    assert separate.stats.total_messages >= 2 * base.stats.total_messages
    # redundant overlapping data eliminated by the union
    assert separate.stats.total_bytes > base.stats.total_bytes


@pytest.mark.benchmark(group="ablation")
def test_ablation_inplace(benchmark):
    # Column shift on a (*, BLOCK) layout: the communicated set is a full
    # column — contiguous in column-major order — so both sides go
    # copy-free when the optimization is on.
    base = benchmark.pedantic(
        lambda: _run(COLUMN_SHIFT, CompilerOptions()),
        rounds=1, iterations=1,
    )
    copied = _run(COLUMN_SHIFT, CompilerOptions(inplace=False))
    emit(
        f"in-place: copies {base.stats.total_copies} vs "
        f"{copied.stats.total_copies} "
        f"(bytes moved {base.stats.total_bytes})"
    )
    assert base.stats.total_copies < copied.stats.total_copies
    assert base.stats.total_copies == 0


@pytest.mark.benchmark(group="ablation")
def test_ablation_loop_splitting_checks(benchmark):
    stencil = OVERLAP_STENCIL
    unsplit = benchmark.pedantic(
        lambda: _run(
            stencil, CompilerOptions(buffer_mode="direct")
        ),
        rounds=1, iterations=1,
    )
    split = _run(
        stencil,
        CompilerOptions(buffer_mode="direct", loop_split=True),
    )
    emit(
        f"loop splitting: buffer checks {unsplit.stats.total_checks} -> "
        f"{split.stats.total_checks}"
    )
    # Paper §3.4 / §7: references in local iterations need no run-time
    # buffer checks once the loop is split.
    assert split.stats.total_checks < 0.5 * unsplit.stats.total_checks


@pytest.mark.benchmark(group="ablation")
def test_ablation_loop_splitting_overlap(benchmark):
    """Splitting moves the RECV after the local section, so receive
    latency overlaps local computation in the replay."""
    model = CostModel(latency=400e-6)  # exaggerate latency

    def run(split):
        compiled = compile_program(
            OVERLAP_STENCIL, CompilerOptions(loop_split=split)
        )
        return run_compiled(
            compiled, params={"n": 64, "niter": 3}, nprocs=4,
            cost_model=model, validate=False,
        )

    unsplit = benchmark.pedantic(
        lambda: run(False), rounds=1, iterations=1
    )
    split = run(True)
    emit(
        f"overlap: predicted {unsplit.predicted_time*1e3:.2f}ms unsplit vs "
        f"{split.predicted_time*1e3:.2f}ms split"
    )
    assert split.predicted_time <= unsplit.predicted_time * 1.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_active_vp(benchmark):
    restricted = benchmark.pedantic(
        lambda: compile_program(gauss(), CompilerOptions(active_vp=True)),
        rounds=1, iterations=1,
    )
    unrestricted = compile_program(
        gauss(), CompilerOptions(active_vp=False)
    )
    run_r = run_compiled(restricted, params={"n": 14}, nprocs=2)
    run_u = run_compiled(unrestricted, params={"n": 14}, nprocs=2)
    emit(
        f"active-VP: compute {run_r.stats.total_compute} (restricted) vs "
        f"{run_u.stats.total_compute} (unrestricted); both validate"
    )
    # Both are correct; the restricted version never does more work.
    assert run_r.stats.total_compute <= run_u.stats.total_compute
    assert run_r.stats.total_messages == run_u.stats.total_messages
