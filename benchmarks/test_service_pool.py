"""Supervised worker-pool load harness (→ ``BENCH_service_pool.json``).

Boots the compile server twice — single-process (``workers=0``, cold
compiles run on the HTTP handler thread) and pooled (``workers >= 4``,
cold compiles fan out to supervised worker processes) — and drives both
with the same client population, in four phases:

* **throughput A/B** — a batch of distinct cold fingerprints against
  each server: the pooled server must sustain a multiple of the
  single-process cold-compile throughput (floor-gated, see below);
* **mixed** — a 90/10 hot/cold request mix through the pooled server:
  zero failed requests, every hot request served from cache;
* **chaos** — the same mix with a worker-crash fault plan SIGKILLing
  workers mid-compile: zero failed *hot* requests, zero hung clients
  (cold requests ride the service retry loop across respawns);
* **drain audit** — graceful shutdown under no load leaks zero child
  processes, and every pooled artifact is byte-identical to an
  in-process compile of the same source.

The throughput floor is machine-dependent: a pool cannot beat one
process on one core.  ``REPRO_POOL_FLOOR`` sets the enforced multiple
(CI pins 3.0 on its 4-vCPU runners); unset, the gate self-arms at 3.0
when ``os.cpu_count() >= 4`` and otherwise records the ratio
report-only.

Scale knobs: ``REPRO_POOL_WORKERS`` (default 4), ``REPRO_POOL_COLD``
(cold fingerprints in the A/B phase, default 24), ``REPRO_POOL_MIXED``
(requests in the mixed/chaos phases, default 200),
``REPRO_POOL_CLIENTS`` (in-flight clients, default 16).
"""

import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed

import pytest

from conftest import emit, percentile_of, record_service_pool
from repro import CompilerOptions, compile_program
from repro.cache.manager import reset_caches
from repro.runtime.faults import FaultPlan
from repro.service import ServiceClient, create_server
from repro.service.protocol import sha256_text

POOL_WORKERS = int(os.environ.get("REPRO_POOL_WORKERS", "4"))
COLD_N = int(os.environ.get("REPRO_POOL_COLD", "24"))
MIXED_N = int(os.environ.get("REPRO_POOL_MIXED", "200"))
CLIENTS = int(os.environ.get("REPRO_POOL_CLIENTS", "16"))
HOT_FRACTION = 0.9
# Every client must finish well inside this bound or it counts as hung.
CLIENT_HANG_S = 120.0

_floor_env = os.environ.get("REPRO_POOL_FLOOR", "")
if _floor_env:
    POOL_FLOOR = float(_floor_env)
elif (os.cpu_count() or 1) >= 4:
    POOL_FLOOR = 3.0
else:
    POOL_FLOOR = 0.0  # report-only on small machines

STENCIL = """
program stencil
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * SCALE
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def stencil(scale: float) -> str:
    return STENCIL.replace("SCALE", str(float(scale)))


HOT_PROGRAMS = {
    "stencil-a": stencil(0.5),
    "stencil-b": stencil(0.25),
    "stencil-c": stencil(0.125),
}


def cold_variant(tag: int) -> str:
    return stencil(2000.0 + tag)


def boot(tmp_path_factory, label, **kwargs):
    reset_caches()
    root = tmp_path_factory.mktemp(f"pool-bench-{label}")
    server = create_server(port=0, cache_dir=str(root), **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    assert server.service.wait_ready(timeout_s=60.0)
    return server, thread


def stop(server, thread):
    server.shutdown_gracefully(timeout_s=60.0)
    server.server_close()
    thread.join(timeout=30)


def assert_no_leaked_children():
    import multiprocessing

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leftover = multiprocessing.active_children()
        if not leftover:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked children: {leftover}")


def drive(server, jobs, in_flight):
    """Run ``jobs`` (label, source) through fresh keep-alive clients.

    Returns (responses, wall_s, hung) where ``hung`` is the count of
    clients that failed to complete inside ``CLIENT_HANG_S``.
    """
    address = server.server_address

    def one(job):
        label, source = job
        start = time.perf_counter()
        with ServiceClient(host=address[0], port=address[1]) as client:
            response = client.compile(source)
        response["label"] = label
        response["client_wall_ms"] = (time.perf_counter() - start) * 1e3
        return response

    responses, hung = [], 0
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=in_flight) as pool:
        futures = [pool.submit(one, job) for job in jobs]
        for future in as_completed(futures, timeout=CLIENT_HANG_S):
            responses.append(future.result())
    wall_s = time.perf_counter() - started
    hung = len(jobs) - len(responses)
    return responses, wall_s, hung


def mixed_schedule(seed, total, cold_base):
    rng = random.Random(seed)
    hot_names = sorted(HOT_PROGRAMS)
    jobs, cold_tag = [], cold_base
    for _ in range(total):
        if rng.random() < HOT_FRACTION:
            name = rng.choice(hot_names)
            jobs.append((f"hot:{name}", HOT_PROGRAMS[name]))
        else:
            jobs.append((f"cold:{cold_tag}", cold_variant(cold_tag)))
            cold_tag += 1
    return jobs


def test_pool_throughput_mixed_chaos_drain(tmp_path_factory):
    cold_jobs = [(f"cold:{t}", cold_variant(t)) for t in range(COLD_N)]

    # -- phase 1: cold-compile throughput A/B -----------------------------
    single, single_thread = boot(tmp_path_factory, "single", workers=0)
    try:
        _, single_wall, hung = drive(single, cold_jobs, CLIENTS)
        assert hung == 0
    finally:
        stop(single, single_thread)
    single_rps = COLD_N / single_wall

    pooled, pooled_thread = boot(
        tmp_path_factory, "pooled",
        workers=POOL_WORKERS, queue_depth=max(16, CLIENTS * 2),
        compile_deadline_s=120.0,
    )
    try:
        cold_responses, pooled_wall, hung = drive(
            pooled, cold_jobs, CLIENTS
        )
        assert hung == 0
        assert all(r["ok"] for r in cold_responses)
        pooled_rps = COLD_N / pooled_wall
        ratio = pooled_rps / single_rps
        emit(f"cold throughput: single {single_rps:.2f} req/s, "
             f"pooled({POOL_WORKERS}) {pooled_rps:.2f} req/s "
             f"({ratio:.2f}x, floor {POOL_FLOOR or 'report-only'})")
        if POOL_FLOOR:
            assert ratio >= POOL_FLOOR, (
                f"pooled/single throughput {ratio:.2f}x "
                f"below the {POOL_FLOOR}x floor"
            )

        # -- phase 2: 90/10 hot/cold steady state -------------------------
        for name in sorted(HOT_PROGRAMS):
            warm = drive(pooled, [(f"hot:{name}", HOT_PROGRAMS[name])],
                         1)[0][0]
            assert warm["ok"]
        mixed_jobs = mixed_schedule(20260808, MIXED_N, COLD_N)
        mixed, mixed_wall, hung = drive(pooled, mixed_jobs, CLIENTS)
        assert hung == 0
        failed = [r for r in mixed if not r.get("ok")]
        assert failed == []
        hot = [r for r in mixed if r["label"].startswith("hot:")]
        assert all(r["cache"] == "hot" for r in hot)

        # -- byte-identity audit ------------------------------------------
        reference = {
            f"hot:{name}": sha256_text(
                compile_program(source, CompilerOptions()).source
            )
            for name, source in HOT_PROGRAMS.items()
        }
        probe = cold_jobs[0]
        reference[probe[0]] = sha256_text(
            compile_program(probe[1], CompilerOptions()).source
        )
        mismatched = [
            (r["label"], r["artifact_sha256"])
            for r in cold_responses + mixed
            if r["label"] in reference
            and r["artifact_sha256"] != reference[r["label"]]
        ]
        assert mismatched == []
        pool_stats = pooled.service.stats()["pool"]
    finally:
        stop(pooled, pooled_thread)
    assert_no_leaked_children()

    # -- phase 3: chaos — SIGKILL workers mid-compile ---------------------
    # The first two incarnations of every slot crash their first compile;
    # the supervisor respawns them and the service retry loop
    # re-dispatches, so clients see only success (or a typed error,
    # never a hang).
    plan = FaultPlan.parse("worker-crash:n=1:attempts=2", seed=20260808)
    chaos, chaos_thread = boot(
        tmp_path_factory, "chaos",
        workers=POOL_WORKERS, queue_depth=max(16, CLIENTS * 2),
        compile_deadline_s=120.0, quarantine_after=10_000,
        pool_fault_plan=plan,
    )
    try:
        for name in sorted(HOT_PROGRAMS):
            warm = drive(chaos, [(f"hot:{name}", HOT_PROGRAMS[name])],
                         1)[0][0]
            assert warm["ok"]
        chaos_jobs = mixed_schedule(31337, MIXED_N, COLD_N + MIXED_N)
        chaos_responses, chaos_wall, hung = drive(
            chaos, chaos_jobs, CLIENTS
        )
        # Gate: zero hung clients, zero failed hot requests.
        assert hung == 0
        hot = [r for r in chaos_responses if r["label"].startswith("hot:")]
        failed_hot = [r for r in hot if not r.get("ok")]
        assert failed_hot == []
        cold = [r for r in chaos_responses
                if r["label"].startswith("cold:")]
        failed_cold = [r for r in cold if not r.get("ok")]
        # Cold requests survive the crashes via the retry loop; a typed
        # failure is tolerated but silence/hangs are not.
        assert all("error" in r for r in failed_cold)
        chaos_stats = chaos.service.stats()["pool"]
        crashes = chaos_stats["counters"].get("crashes", 0)
        respawns = chaos_stats["counters"].get("respawns", 0)
        assert crashes >= 1, "chaos plan never fired"
        assert respawns >= 1, "no worker was respawned"
    finally:
        stop(chaos, chaos_thread)

    # -- phase 4: drain audit ---------------------------------------------
    assert_no_leaked_children()

    wall_ms = [r["client_wall_ms"] for r in chaos_responses]
    emit(f"mixed: {MIXED_N} requests in {mixed_wall:.1f} s "
         f"({MIXED_N / mixed_wall:.0f} req/s), 0 failed")
    emit(f"chaos: {crashes} worker crashes, {respawns} respawns, "
         f"{len(failed_cold)} typed cold failures, 0 failed hot, "
         f"0 hung clients")

    record_service_pool("pool", {
        "workers": POOL_WORKERS,
        "clients": CLIENTS,
        "floor": POOL_FLOOR,
        "floor_enforced": bool(POOL_FLOOR),
        "cpu_count": os.cpu_count(),
        "throughput": {
            "cold_fingerprints": COLD_N,
            "single_wall_s": round(single_wall, 3),
            "single_req_per_s": round(single_rps, 3),
            "pooled_wall_s": round(pooled_wall, 3),
            "pooled_req_per_s": round(pooled_rps, 3),
            "ratio": round(ratio, 3),
        },
        "mixed": {
            "requests": MIXED_N,
            "hot_fraction": HOT_FRACTION,
            "wall_s": round(mixed_wall, 3),
            "requests_per_s": round(MIXED_N / mixed_wall, 1),
            "failed_requests": len(failed),
            "client_wall_p50_ms": round(
                percentile_of([r["client_wall_ms"] for r in mixed], 50), 3
            ),
            "client_wall_p99_ms": round(
                percentile_of([r["client_wall_ms"] for r in mixed], 99), 3
            ),
            "pool": pool_stats["counters"],
        },
        "chaos": {
            "requests": MIXED_N,
            "wall_s": round(chaos_wall, 3),
            "worker_crashes": crashes,
            "worker_respawns": respawns,
            "failed_hot_requests": len(failed_hot),
            "failed_cold_requests_typed": len(failed_cold),
            "hung_clients": hung,
            "client_wall_p99_ms": round(percentile_of(wall_ms, 99), 3),
        },
        "drain": {"leaked_children": 0},
        "byte_identical_vs_single_client": True,
    })
